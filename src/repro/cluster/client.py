"""The fault-tolerant cluster client.

:class:`ClusterClient` is where the robustness mechanisms compose into
one call path.  Every operation:

1. resolves its ``timeout=``/``deadline=`` pair into one
   :class:`~repro.concurrent.deadline.Deadline` that bounds the *whole*
   operation — every retry, every backoff sleep, every socket wait
   draws from the same budget;
2. asks the target shard's :class:`~repro.cluster.breaker.CircuitBreaker`
   for admission — a shard known to be down fails in microseconds with
   :class:`~repro.core.errors.CircuitOpenError` instead of burning the
   budget rediscovering the outage;
3. sends a framed request carrying a fresh correlation id, the
   remaining budget, and (for writes) an idempotency token that is
   **reused across retries** so the server applies the write at most
   once no matter how many times the network made us resend it;
4. retries transient failures (connection drops, mangled frames,
   server-side admission timeouts) under the shared
   :class:`~repro.concurrent.retry.RetryPolicy` — capped exponential
   backoff with per-client seeded jitter — until the deadline budget
   says stop, at which point the caller gets a typed
   :class:`~repro.core.errors.OperationTimeout`, never a hang.

Typed errors from the server are reconstructed into the same exception
classes a local :class:`~repro.cluster.store.ShardedDenseFile` raises,
so callers handle remote and local failure identically.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..concurrent.deadline import Deadline
from ..concurrent.retry import RetryCounters, RetryPolicy, retry_call
from ..core.errors import (
    CircuitOpenError,
    ClusterError,
    ConfigurationError,
    DuplicateKeyError,
    FileFullError,
    InvariantViolationError,
    OperationTimeout,
    OverloadError,
    ReadOnlyError,
    RecordNotFoundError,
    ReproError,
    ShardUnavailableError,
    TransientNetworkError,
    WireProtocolError,
)
from ..records import Record
from .breaker import CircuitBreaker
from .sharding import ShardMap
from .store import ScanResult
from .transport import Channel, SocketChannel
from .wire import check_correlation, decode_bytes, encode_frame, request

#: Failures worth retrying: the op may not have reached a definite
#: outcome yet.  Everything else is a definite answer and surfaces.
RETRYABLE = (TransientNetworkError, WireProtocolError, OperationTimeout)

#: Default client ids are drawn from a process-wide counter, because
#: idempotency tokens are namespaced by client id: two clients sharing
#: an id would replay each other's recorded outcomes.
_CLIENT_IDS = itertools.count()


def _rebuild_error(name: str, message: str, detail: Dict[str, Any]) -> ReproError:
    """The server's typed error, reconstructed client-side."""
    if name == "ShardUnavailableError":
        return ShardUnavailableError(
            message,
            shard_ids=tuple(detail.get("shard_ids", ())),
            key_ranges=tuple(tuple(pair) for pair in detail.get("key_ranges", ())),
            mode=str(detail.get("mode", "down")),
        )
    if name == "CircuitOpenError":
        return CircuitOpenError(
            message,
            shard_id=int(detail.get("shard_id", -1)),
            retry_after=float(detail.get("retry_after", 0.0)),
        )
    if name == "OverloadError":
        return OverloadError(
            message,
            queue_depth=int(detail.get("queue_depth", 0)),
            in_flight=int(detail.get("in_flight", 0)),
        )
    plain = {
        "DuplicateKeyError": DuplicateKeyError,
        "RecordNotFoundError": RecordNotFoundError,
        "FileFullError": FileFullError,
        "OperationTimeout": OperationTimeout,
        "ReadOnlyError": ReadOnlyError,
        "WireProtocolError": WireProtocolError,
        "TransientNetworkError": TransientNetworkError,
        "InvariantViolationError": InvariantViolationError,
        "ConfigurationError": ConfigurationError,
    }.get(name)
    if plain is not None:
        return plain(message)
    return ClusterError(f"{name}: {message}")


def _to_record(payload: Optional[List[Any]]) -> Optional[Record]:
    return None if payload is None else Record(payload[0], payload[1])


def _to_scan(payload: Dict[str, Any]) -> ScanResult:
    return ScanResult(
        records=tuple(
            Record(item[0], item[1]) for item in payload.get("records", ())
        ),
        partial=bool(payload.get("partial", False)),
        unavailable=tuple(
            tuple(pair) for pair in payload.get("unavailable", ())
        ),
    )


class ClusterClient:
    """Deadline-aware, retrying, breaker-gated cluster front-end client.

    Parameters
    ----------
    channel:
        The transport (a :class:`~repro.cluster.transport.SocketChannel`
        or :class:`~repro.cluster.transport.LocalChannel`, possibly
        wrapped in a chaos channel).
    retry_policy:
        Shared backoff policy; its jitter seed is re-seeded per client
        (``client_seed``) so a fleet spreads its retries.
    default_timeout:
        Budget for operations that pass neither ``timeout=`` nor
        ``deadline=``.  ``None`` keeps them unbounded.
    """

    def __init__(
        self,
        channel: Channel,
        client_id: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        default_timeout: Optional[float] = None,
        client_seed: Optional[int] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.channel = channel
        self.client_id = (
            client_id if client_id is not None else f"c{next(_CLIENT_IDS)}"
        )
        policy = retry_policy if retry_policy is not None else RetryPolicy()
        if client_seed is not None:
            policy = policy.with_seed(client_seed)
        self.retry_policy = policy
        self.default_timeout = default_timeout
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self._clock = clock
        self._sleep = sleep
        self.counters = RetryCounters()
        self._mutex = threading.Lock()
        self._sequence = itertools.count()
        self._shard_map: Optional[ShardMap] = None
        self._breakers: Dict[int, CircuitBreaker] = {}

    @classmethod
    def connect(cls, host: str, port: int, **kwargs: Any) -> "ClusterClient":
        """A client over a fresh TCP channel to ``host:port``."""
        return cls(SocketChannel(host, port), **kwargs)

    # -- handshake and routing ------------------------------------------

    @property
    def shard_map(self) -> ShardMap:
        """The routing table (fetched via ``hello`` on first use)."""
        with self._mutex:
            cached = self._shard_map
        if cached is not None:
            return cached
        return self.hello()

    def hello(
        self,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> ShardMap:
        """Handshake: download the shard map, (re)build the breakers."""
        result = self._call("hello", {}, timeout=timeout, deadline=deadline)
        shard_map = ShardMap.from_wire(result["shard_map"])
        self.prime(shard_map)
        return shard_map

    def prime(self, shard_map: ShardMap) -> None:
        """Install a known shard map without the ``hello`` round trip.

        Used when the routing table is available out of band (the chaos
        harness shares the server's map directly) so the handshake does
        not have to survive the fault plan it is about to test.
        """
        with self._mutex:
            self._shard_map = shard_map
            for shard_id in range(shard_map.num_shards):
                if shard_id not in self._breakers:
                    self._breakers[shard_id] = CircuitBreaker(
                        shard_id=shard_id,
                        failure_threshold=self.breaker_threshold,
                        reset_timeout=self.breaker_reset,
                        clock=self._clock,
                    )

    def breaker(self, shard_id: int) -> CircuitBreaker:
        """The circuit breaker guarding ``shard_id``."""
        self.shard_map  # ensure the handshake happened
        with self._mutex:
            return self._breakers[shard_id]

    def _next_token(self) -> str:
        return f"{self.client_id}:t{next(self._sequence)}"

    def new_token(self) -> str:
        """A fresh idempotency token (callers auditing at-most-once
        application generate the token *before* issuing the write, so
        it survives even when the call raises)."""
        return self._next_token()

    def _next_request_id(self) -> str:
        return f"{self.client_id}:r{next(self._sequence)}"

    # -- the call path ---------------------------------------------------

    def _exchange(
        self,
        op: str,
        args: Dict[str, Any],
        budget: Deadline,
        token: Optional[str],
    ) -> Any:
        """One attempt: frame, send, decode, correlate, raise-or-return.

        The caller checks the budget *before* breaker admission; by the
        time we are here an ``OperationTimeout`` can only be the
        server's answer, so the breaker accounting in ``_call`` may
        treat it as a shard failure.
        """
        request_id = self._next_request_id()
        body = request(
            op,
            request_id,
            args=args,
            token=token,
            budget=None if budget.expires_at is None else budget.remaining(),
        )
        raw = self.channel.request(encode_frame(body), timeout=budget.wait_budget())
        response = decode_bytes(raw)
        check_correlation(response, request_id)
        if response.get("ok"):
            return response.get("result")
        raise _rebuild_error(
            str(response.get("error", "ClusterError")),
            str(response.get("message", "")),
            response.get("detail") or {},
        )

    def _call(
        self,
        op: str,
        args: Dict[str, Any],
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        token: Optional[str] = None,
        shard_id: Optional[int] = None,
    ) -> Any:
        """The full robust call: breaker gate, retry loop, deadline."""
        budget = Deadline.resolve(
            timeout, deadline, self.default_timeout, clock=self._clock
        )
        breaker = None
        if shard_id is not None:
            with self._mutex:
                breaker = self._breakers.get(shard_id)

        def attempt() -> Any:
            # A spent client-side budget is not a shard failure: raise
            # before asking the breaker for admission, so a too-small
            # budget can never trip the breaker of a shard that was
            # never contacted.  Past this point an OperationTimeout is
            # the server's answer.
            budget.check(f"cluster {op}")
            if breaker is not None:
                breaker.allow()
            # The breaker admitted this call, so exactly one outcome
            # must be reported below — success, failure, or a neutral
            # release — on every path out, or a half-open probe slot
            # leaks and the breaker wedges shut forever.
            try:
                result = self._exchange(op, args, budget, token)
            except (ShardUnavailableError, OperationTimeout):
                # A definite "this shard cannot serve" answer: feed the
                # breaker so later calls fail fast.
                if breaker is not None:
                    breaker.record_failure()
                raise
            except (TransientNetworkError, WireProtocolError):
                # Connection-scoped, not shard-scoped: release the
                # probe slot without biasing the failure count (and
                # without closing a half-open breaker — a reset probe
                # proved nothing about the shard).
                if breaker is not None:
                    breaker.release()
                raise
            except ReproError:
                # Any other typed outcome — duplicate key, missing
                # record, overload shed, a server-side refusal — means
                # the shard answered: a success as far as shard health
                # is concerned.
                if breaker is not None:
                    breaker.record_success()
                raise
            except BaseException:
                # Unexpected (a bug, an interrupt): free the slot
                # without judging the shard.
                if breaker is not None:
                    breaker.release()
                raise
            if breaker is not None:
                breaker.record_success()
            return result

        return retry_call(
            attempt,
            self.retry_policy,
            retryable=RETRYABLE,
            deadline=budget,
            sleep=self._sleep,
            counters=self.counters,
            what=f"cluster {op}",
        )

    # -- point operations ------------------------------------------------

    def insert(
        self,
        key: Any,
        value: Any = None,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Insert ``key`` (at-most-once across retries via its token)."""
        self._call(
            "insert",
            {"key": key, "value": value},
            timeout=timeout,
            deadline=deadline,
            token=self._next_token(),
            shard_id=self.shard_map.shard_for(key),
        )

    def delete(
        self,
        key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Optional[Record]:
        """Delete ``key`` and return the removed record."""
        return _to_record(
            self._call(
                "delete",
                {"key": key},
                timeout=timeout,
                deadline=deadline,
                token=self._next_token(),
                shard_id=self.shard_map.shard_for(key),
            )
        )

    def search(
        self,
        key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Optional[Record]:
        """Point lookup for ``key``."""
        return _to_record(
            self._call(
                "search",
                {"key": key},
                timeout=timeout,
                deadline=deadline,
                shard_id=self.shard_map.shard_for(key),
            )
        )

    # -- fan-out operations ----------------------------------------------

    def scan(
        self,
        start_key: Any,
        count: int,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> ScanResult:
        """Up to ``count`` records from ``start_key`` (may be partial)."""
        return _to_scan(
            self._call(
                "scan",
                {"key": start_key, "count": count},
                timeout=timeout,
                deadline=deadline,
            )
        )

    def range(
        self,
        lo_key: Any,
        hi_key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> ScanResult:
        """All records in ``[lo_key, hi_key]`` (may be partial)."""
        return _to_scan(
            self._call(
                "range",
                {"lo": lo_key, "hi": hi_key},
                timeout=timeout,
                deadline=deadline,
            )
        )

    def count_range(
        self,
        lo_key: Any,
        hi_key: Any,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> int:
        """Records in ``[lo_key, hi_key]`` (refuses on down shards)."""
        return int(
            self._call(
                "count",
                {"lo": lo_key, "hi": hi_key},
                timeout=timeout,
                deadline=deadline,
            )
        )

    def __len__(self) -> int:
        return int(self._call("len", {}))

    # -- health, admin, observability ------------------------------------

    def ping(
        self,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> bool:
        """Round-trip liveness check."""
        return self._call("ping", {}, timeout=timeout, deadline=deadline) == "pong"

    def health(
        self,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[Dict[str, Any]]:
        """Per-shard health records from the server."""
        return list(self._call("health", {}, timeout=timeout, deadline=deadline))

    def stats(
        self,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Dict[str, Any]:
        """Server-side cluster stats."""
        return dict(self._call("stats", {}, timeout=timeout, deadline=deadline))

    def token_outcome(self, token: str) -> Optional[Dict[str, Any]]:
        """The server's recorded outcome for ``token`` (None = not applied)."""
        return self._call("token", {"token": token})

    def kill_shard(self, shard_id: int) -> str:
        """Admin: take a shard down (chaos harness / drills)."""
        return str(self._call("kill_shard", {"shard_id": shard_id})["state"])

    def degrade_shard(self, shard_id: int) -> str:
        """Admin: degrade a shard to read-only."""
        return str(self._call("degrade_shard", {"shard_id": shard_id})["state"])

    def revive_shard(self, shard_id: int) -> str:
        """Admin: return a shard to service."""
        return str(self._call("revive_shard", {"shard_id": shard_id})["state"])

    def client_stats(self) -> Dict[str, Any]:
        """Client-side counters: retries, giveups, breaker transitions."""
        with self._mutex:
            breakers = {
                shard_id: breaker.stats()
                for shard_id, breaker in sorted(self._breakers.items())
            }
        return {
            "client_id": self.client_id,
            "retries": self.counters.retries,
            "giveups": self.counters.giveups,
            "deadline_giveups": self.counters.deadline_giveups,
            "backoff_total": self.counters.backoff_total,
            "breakers": breakers,
        }

    def close(self) -> None:
        """Release the transport."""
        self.channel.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- write-with-known-token (the chaos harness needs the token) ------

    def insert_with_token(
        self,
        key: Any,
        value: Any = None,
        *,
        token: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> str:
        """Insert returning the idempotency token used (for audits)."""
        used = token if token is not None else self._next_token()
        self._call(
            "insert",
            {"key": key, "value": value},
            timeout=timeout,
            deadline=deadline,
            token=used,
            shard_id=self.shard_map.shard_for(key),
        )
        return used

    def delete_with_token(
        self,
        key: Any,
        *,
        token: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> Tuple[str, Optional[Record]]:
        """Delete returning ``(token, removed record)`` (for audits)."""
        used = token if token is not None else self._next_token()
        record = _to_record(
            self._call(
                "delete",
                {"key": key},
                timeout=timeout,
                deadline=deadline,
                token=used,
                shard_id=self.shard_map.shard_for(key),
            )
        )
        return used, record
