"""Client transports: how framed requests reach the cluster server.

Two interchangeable channels implement the same tiny contract —
``request(frame, timeout) -> response frame`` over a persistent
connection:

:class:`SocketChannel`
    A real TCP connection (used by ``repro serve`` deployments and the
    networked benchmark cell).  Reads are exact-length with a socket
    timeout, so a stalled peer surfaces as
    :class:`~repro.core.errors.OperationTimeout` raw material
    (``socket.timeout``) rather than a hang.
:class:`LocalChannel`
    Calls the server's dispatcher in-process, byte-for-byte through the
    same encode/decode path.  The chaos harness wraps this one in a
    :class:`~repro.cluster.netfaults.ChaosChannel` so fault schedules
    are deterministic and wall-clock-free.

Failures that mean *the connection is gone* (reset, refused, truncated
stream) raise :class:`~repro.core.errors.TransientNetworkError`; the
client's retry loop reconnects and retries those while the deadline
budget lasts.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, Optional, Protocol

from ..core.errors import TransientNetworkError, WireProtocolError
from .wire import HEADER, MAGIC, MAX_FRAME


class Channel(Protocol):
    """One request/response exchange over a persistent connection."""

    def request(self, frame: bytes, timeout: Optional[float] = None) -> bytes:
        """Send ``frame`` and return the complete response frame."""
        ...

    def close(self) -> None:
        """Release the underlying connection (idempotent)."""
        ...


class SocketChannel:
    """A framed exchange over one TCP connection.

    Connects lazily on the first request and reconnects after any
    failure was surfaced — the caller decides whether to retry.  All
    socket-level errors are wrapped in :class:`TransientNetworkError`
    so the client's retry predicate stays a single isinstance check.
    """

    def __init__(self, host: str, port: int, connect_timeout: float = 5.0):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self._mutex = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self.connects = 0

    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as error:
            raise TransientNetworkError(
                f"connect to {self.host}:{self.port} failed: {error}"
            ) from error
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.connects += 1
        return sock

    def _recv_exact(self, sock: socket.socket, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining > 0:
            chunk = sock.recv(min(remaining, 65536))
            if not chunk:
                raise TransientNetworkError(
                    f"peer closed the connection with {remaining} of "
                    f"{count} bytes unread"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def request(self, frame: bytes, timeout: Optional[float] = None) -> bytes:
        """Send one frame, read one framed response, return its bytes.

        ``timeout`` bounds every blocking socket call for this
        exchange; expiry raises ``socket.timeout`` (an ``OSError``)
        wrapped as :class:`TransientNetworkError` after the connection
        is torn down, so the next attempt starts clean.
        """
        with self._mutex:
            if self._sock is None:
                self._sock = self._connect()
            sock = self._sock
            try:
                sock.settimeout(timeout)
                sock.sendall(frame)
                header = self._recv_exact(sock, HEADER.size)
                magic, length, _crc = HEADER.unpack(header)
                if magic != MAGIC or length > MAX_FRAME:
                    raise WireProtocolError(
                        f"bad response header (magic={magic!r}, len={length})"
                    )
                return header + self._recv_exact(sock, length)
            except TransientNetworkError:
                self._teardown()
                raise
            except OSError as error:
                # Socket timeouts and resets alike: the connection
                # state is unknown, so drop it and let the retry path
                # reconnect instead of reading a stale stream.
                self._teardown()
                raise TransientNetworkError(
                    f"exchange with {self.host}:{self.port} failed: {error}"
                ) from error
            except BaseException:
                self._teardown()
                raise

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        """Close the connection (safe to call repeatedly)."""
        with self._mutex:
            self._teardown()


class LocalChannel:
    """In-process channel: hand the frame straight to a dispatcher.

    The dispatcher is the server's ``handle_frame`` — the exact same
    bytes-in/bytes-out function the TCP handler uses, so everything
    above the socket (framing, CRC, correlation, idempotency) is
    exercised identically with zero network nondeterminism.
    """

    def __init__(self, dispatcher: Callable[[bytes], bytes]):
        self._dispatcher = dispatcher
        self.requests = 0
        self._closed = False

    def request(self, frame: bytes, timeout: Optional[float] = None) -> bytes:
        """Dispatch one frame (``timeout`` is accepted for symmetry)."""
        if self._closed:
            raise TransientNetworkError("channel is closed")
        self.requests += 1
        return self._dispatcher(frame)

    def close(self) -> None:
        """Mark the channel closed; later requests fail transiently."""
        self._closed = True
