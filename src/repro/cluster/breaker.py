"""Per-shard circuit breakers: stop paying for a shard that is down.

Retries absorb *transient* faults; a shard that is crashed, partitioned
or degraded fails every attempt, and a client that keeps retrying into
it burns its whole deadline budget learning the same fact over and
over.  The :class:`CircuitBreaker` converts repeated failure into local
knowledge with the classic three-state machine:

``closed``
    Normal service.  Failures are counted; ``failure_threshold``
    *consecutive* failures trip the breaker to ``open``.
``open``
    Every call is refused immediately with
    :class:`~repro.core.errors.CircuitOpenError` — the caller fails in
    microseconds instead of seconds, keeping its own worst-case bound.
    After ``reset_timeout`` seconds the breaker moves to ``half_open``.
``half_open``
    Exactly one in-flight *probe* request is allowed through.  If it
    succeeds the breaker closes (the shard recovered); if it fails the
    breaker re-opens for another full cooldown.  Concurrent calls while
    the probe is out are refused like ``open``.

Every admitted call must report **exactly one** outcome:
:meth:`~CircuitBreaker.record_success` (the shard answered, even with a
domain error), :meth:`~CircuitBreaker.record_failure` (the shard could
not serve), or :meth:`~CircuitBreaker.release` (the attempt ended
without learning anything about the shard — a connection-scoped fault
or a client-side abort).  ``release`` exists so inconclusive outcomes
neither close a half-open breaker nor bias the failure count — and so
the probe slot can never leak, which would wedge the breaker open
forever.

The clock is injectable (``time.monotonic`` by default) so tests and
the chaos harness drive the state machine deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

from ..core.errors import CircuitOpenError, ConfigurationError

#: The three breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe."""

    def __init__(
        self,
        shard_id: int = -1,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be at least 1")
        if reset_timeout < 0.0:
            raise ConfigurationError("reset_timeout cannot be negative")
        self.shard_id = shard_id
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._mutex = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        # Observability counters (read under the mutex).
        self.opens = 0
        self.closes = 0
        self.rejections = 0
        self.probes = 0
        self.releases = 0

    # -- the gate -------------------------------------------------------

    def allow(self) -> None:
        """Admit one call or raise :class:`CircuitOpenError`.

        In ``half_open`` the first caller becomes the probe; its
        :meth:`record_success` / :meth:`record_failure` decides the next
        state.  Callers must report exactly one outcome per admitted
        call.
        """
        with self._mutex:
            if self._state == CLOSED:
                return
            now = self._clock()
            if self._state == OPEN:
                elapsed = now - self._opened_at
                if elapsed < self.reset_timeout:
                    self.rejections += 1
                    raise CircuitOpenError(
                        f"circuit for shard {self.shard_id} is open "
                        f"({self._consecutive_failures} consecutive "
                        f"failures); probe in "
                        f"{self.reset_timeout - elapsed:.3f}s",
                        shard_id=self.shard_id,
                        retry_after=self.reset_timeout - elapsed,
                    )
                self._state = HALF_OPEN
                self._probe_in_flight = False
            # half_open: admit exactly one probe at a time.
            if self._probe_in_flight:
                self.rejections += 1
                raise CircuitOpenError(
                    f"circuit for shard {self.shard_id} is half-open with "
                    "a probe already in flight",
                    shard_id=self.shard_id,
                    retry_after=self.reset_timeout,
                )
            self._probe_in_flight = True
            self.probes += 1

    def record_success(self) -> None:
        """The admitted call succeeded; close from half-open."""
        with self._mutex:
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._state = CLOSED
                self._probe_in_flight = False
                self.closes += 1

    def record_failure(self) -> None:
        """The admitted call failed; trip or re-open as appropriate."""
        with self._mutex:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_in_flight = False
                self.opens += 1
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self.opens += 1

    def release(self) -> None:
        """The admitted call ended inconclusively; free the slot.

        A connection reset or a client-side abort says nothing about
        the shard behind the connection, so the breaker must neither
        count a failure nor celebrate a success.  In ``closed`` this is
        a no-op (state and failure count untouched).  In ``half_open``
        the probe slot is returned and the breaker re-opens for another
        full cooldown — the probe was spent without an answer, and
        leaving the slot marked in-flight would wedge the breaker shut
        forever.
        """
        with self._mutex:
            self.releases += 1
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_in_flight = False
                self.opens += 1

    # -- introspection --------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, re-evaluating the open->half-open timer."""
        with self._mutex:
            if (
                self._state == OPEN
                and self._clock() - self._opened_at >= self.reset_timeout
            ):
                return HALF_OPEN
            return self._state

    def stats(self) -> Dict[str, object]:
        """State and transition counters as a printable dictionary."""
        with self._mutex:
            return {
                "shard_id": self.shard_id,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self.opens,
                "closes": self.closes,
                "rejections": self.rejections,
                "probes": self.probes,
                "releases": self.releases,
            }
