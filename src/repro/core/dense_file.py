"""The public facade: a ``(d, D)``-dense sequential file.

:class:`DenseSequentialFile` is what a downstream user imports.  It
chooses the right engine for the requested geometry (CONTROL 2, the
macro-block variant when the slack condition fails, or CONTROL 1 as the
amortized baseline), and exposes a dictionary-flavoured API plus ordered
scans, which is the workload the paper argues dense files exist for.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..records import Record
from ..storage.backend import PageStore, make_store
from ..storage.cost import CostModel, PAGE_ACCESS_MODEL
from .control1 import Control1Engine
from .control2 import Control2Engine
from .errors import ConfigurationError
from .macroblock import MacroBlockControl2Engine, macro_params
from .params import DensityParams

ALGORITHMS = ("control1", "control2")


def build_engine(
    num_pages: int,
    d: int,
    D: int,
    algorithm: str = "control2",
    j: Optional[int] = None,
    model: CostModel = PAGE_ACCESS_MODEL,
    auto_macroblock: bool = True,
    backend: str = "memory",
    store: Optional[PageStore] = None,
    path: Optional[str] = None,
    cache_pages: Optional[int] = None,
    overwrite: bool = False,
    readahead: int = 0,
    page_format: str = "packed",
):
    """Construct the maintenance engine for the requested geometry.

    When ``algorithm="control2"`` and the slack condition
    ``D - d > 3 * ceil(log2 M)`` fails, the macro-block variant of
    Theorem 5.7 is selected automatically (disable with
    ``auto_macroblock=False`` to get a :class:`ConfigurationError`
    instead).

    The physical layer is chosen by ``backend``
    (``"memory" | "disk" | "buffered"``, built via
    :func:`~repro.storage.backend.make_store` with ``path`` /
    ``cache_pages`` / ``overwrite``), or passed ready-made as
    ``store`` — every engine is backend-agnostic, so the logical page
    accesses the paper bounds are identical on all of them.
    """
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; pick one of {ALGORITHMS}"
        )
    params = DensityParams(num_pages=num_pages, d=d, D=D, j=j)
    use_macro = algorithm == "control2" and not params.satisfies_slack_condition
    if use_macro and not auto_macroblock:
        raise ConfigurationError(
            f"D - d = {D - d} <= 3*ceil(log2 M) = {3 * params.log_m}; "
            "enable auto_macroblock or widen the slack"
        )
    if use_macro:
        # The engine's pages are macro-blocks; size the store to match.
        engine_params = macro_params(num_pages, d, D, j=j)
    else:
        engine_params = params
    if store is None:
        store = make_store(
            backend,
            engine_params.num_pages,
            d=engine_params.d,
            D=engine_params.D,
            j=engine_params.j or 0,
            path=path,
            cache_pages=cache_pages,
            overwrite=overwrite,
            model=model,
            readahead=readahead,
            page_format=page_format,
        )
    elif store.num_pages != engine_params.num_pages:
        raise ConfigurationError(
            f"store has {store.num_pages} pages but the engine needs "
            f"{engine_params.num_pages}"
        )
    if algorithm == "control1":
        return Control1Engine(params, model=model, store=store)
    if not use_macro:
        return Control2Engine(params, model=model, store=store)
    return MacroBlockControl2Engine(
        num_pages, d, D, j=j, model=model, store=store
    )


class DenseSequentialFile:
    """A dynamically maintained ``(d, D)``-dense sequential file.

    Parameters
    ----------
    num_pages:
        ``M``, the number of consecutive pages of auxiliary memory.
    d:
        Average density bound; the file holds at most ``d * num_pages``
        records.
    D:
        Per-page capacity.
    algorithm:
        ``"control2"`` (default, worst-case guarantees) or
        ``"control1"`` (amortized baseline).
    j:
        CONTROL 2's per-command shift budget; ``None`` uses the
        recommended default.
    model:
        Access-cost model charged by the simulated disk.
    backend:
        Physical layer spec: ``"memory"`` (default, pure simulation),
        ``"disk"`` (write-through to a checksummed OS file at ``path``)
        or ``"buffered"`` (a live write-back LRU cache of
        ``cache_pages`` frames over disk when ``path`` is given, over
        memory otherwise).  The logical access counts the paper bounds
        are identical on every backend.
    store:
        A ready-made :class:`~repro.storage.backend.PageStore`
        (overrides ``backend``).

    Examples
    --------
    >>> f = DenseSequentialFile(num_pages=64, d=8, D=40)
    >>> f.insert(42, "answer")
    >>> f.search(42).value
    'answer'
    >>> [r.key for r in f.range(40, 45)]
    [42]
    """

    def __init__(
        self,
        num_pages: int,
        d: int,
        D: int,
        algorithm: str = "control2",
        j: Optional[int] = None,
        model: CostModel = PAGE_ACCESS_MODEL,
        auto_macroblock: bool = True,
        backend: str = "memory",
        store: Optional[PageStore] = None,
        path: Optional[str] = None,
        cache_pages: Optional[int] = None,
        overwrite: bool = False,
        readahead: int = 0,
        page_format: str = "packed",
    ):
        self.engine = build_engine(
            num_pages,
            d,
            D,
            algorithm=algorithm,
            j=j,
            model=model,
            auto_macroblock=auto_macroblock,
            backend=backend,
            store=store,
            path=path,
            cache_pages=cache_pages,
            overwrite=overwrite,
            readahead=readahead,
            page_format=page_format,
        )
        self.algorithm = algorithm
        # Hot-path aliases: bind insert/delete straight to the engine's
        # bound methods so the per-command loop skips one wrapper frame.
        # Only for this exact class — a subclass overriding either
        # method keeps normal dynamic dispatch.
        if type(self) is DenseSequentialFile:
            self.insert = self.engine.insert
            self.delete = self.engine.delete

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_records(cls, records, num_pages: int, d: int, D: int, **kwargs):
        """Build a file and bulk-load ``records`` with uniform density."""
        dense_file = cls(num_pages, d, D, **kwargs)
        dense_file.bulk_load(records)
        return dense_file

    def bulk_load(self, records) -> None:
        """Uniformly load an iterable of records/keys into an empty file."""
        self.engine.bulk_load(records)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert(self, key, value=None) -> None:
        """Insert a record; worst-case ``O(log^2 M / (D-d))`` page accesses."""
        self.engine.insert(key, value)

    def delete(self, key) -> Record:
        """Delete and return the record with ``key``."""
        return self.engine.delete(key)

    def insert_many(self, items, batch: bool = True) -> int:
        """Insert an iterable of records/keys in a key-ordered sweep.

        ``batch=True`` (default) coalesces the read/write charges of
        same-destination records; ``batch=False`` runs the plain
        per-record loop.  Both produce identical final file state.
        """
        return self.engine.insert_many(items, batch=batch)

    def delete_range(self, lo_key, hi_key, batch: bool = True) -> int:
        """Bulk-delete every record with ``lo_key <= key <= hi_key``."""
        return self.engine.delete_range(lo_key, hi_key, batch=batch)

    def update(self, key, value) -> Record:
        """Replace the value stored under an existing ``key`` in place."""
        page = self.engine.pagefile.locate(key)
        if page is None:
            from .errors import RecordNotFoundError

            raise RecordNotFoundError(key)
        return self.engine.pagefile.replace_record(page, Record(key, value))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def search(self, key) -> Optional[Record]:
        """Return the record with ``key`` or ``None``."""
        return self.engine.search(key)

    def __contains__(self, key) -> bool:
        return key in self.engine

    def __len__(self) -> int:
        return len(self.engine)

    def range(self, lo_key, hi_key) -> Iterator[Record]:
        """Stream records with ``lo_key <= key <= hi_key`` in key order.

        This is the paper's "stream retrieval": the underlying accesses
        sweep consecutive pages, which is the whole point of keeping the
        file dense and sequential.
        """
        return self.engine.range_scan(lo_key, hi_key)

    def scan(self, start_key, count: int) -> List[Record]:
        """Return up to ``count`` records with key >= ``start_key``."""
        return self.engine.scan_count(start_key, count)

    def rank(self, key) -> int:
        """Number of records with key strictly less than ``key``."""
        return self.engine.rank(key)

    def count_range(self, lo_key, hi_key) -> int:
        """Records with ``lo_key <= key <= hi_key`` (<= 2 page accesses)."""
        return self.engine.count_range(lo_key, hi_key)

    def select(self, index: int) -> Record:
        """The record of 0-based rank ``index`` in key order."""
        return self.engine.select(index)

    def compact(self) -> int:
        """Uniformly redistribute all records; returns pages rewritten."""
        return self.engine.compact()

    def min(self) -> Optional[Record]:
        """The smallest-keyed record, or ``None`` on an empty file."""
        return self.engine.min_record()

    def max(self) -> Optional[Record]:
        """The largest-keyed record, or ``None`` on an empty file."""
        return self.engine.max_record()

    def successor(self, key) -> Optional[Record]:
        """Smallest record with key strictly greater than ``key``."""
        return self.engine.successor(key)

    def predecessor(self, key) -> Optional[Record]:
        """Largest record with key strictly less than ``key``."""
        return self.engine.predecessor(key)

    def __iter__(self) -> Iterator:
        return self.keys()

    def keys(self) -> Iterator:
        """Yield every key in ascending order (charges reads per page)."""
        for record in self.engine.iter_records():
            yield record.key

    def items(self) -> Iterator:
        """Yield ``(key, value)`` pairs in ascending key order."""
        for record in self.engine.iter_records():
            yield record.key, record.value

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def params(self) -> DensityParams:
        return self.engine.params

    @property
    def stats(self):
        """Access counters of the simulated disk."""
        return self.engine.stats

    @property
    def store(self) -> PageStore:
        """The physical backend under this file's pages."""
        return self.engine.store

    def store_stats(self) -> dict:
        """Physical-layer counters of the backend (hits/misses for
        ``"buffered"``, write-through counts for ``"disk"``)."""
        return self.engine.store.stats()

    def flush(self) -> int:
        """Push buffered pages down to the backing medium (no-op in memory)."""
        return self.engine.store.flush()

    def close(self) -> None:
        """Flush and release the backend's resources (no-op in memory)."""
        self.engine.store.close()

    @property
    def closed(self) -> bool:
        """Whether the backing store has been closed."""
        return self.engine.store.closed

    def __enter__(self) -> "DenseSequentialFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def occupancies(self) -> List[int]:
        """Records per page (macro-block granularity in macro mode)."""
        return self.engine.occupancies()

    def validate(self) -> None:
        """Assert all end-of-command invariants (raises on violation)."""
        self.engine.validate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DenseSequentialFile({self.engine.algorithm_name}, "
            f"{self.params}, size={len(self)})"
        )
