"""Macro-block generalization (Section 5, equations 5.3-5.4, Theorem 5.7).

CONTROL 2 as stated needs ``D - d > 3 * ceil(log2 M)``.  When the slack
is smaller, the paper groups ``K`` consecutive pages into *macro-blocks*
with ``K`` the least integer satisfying ``K * (D - d) > 3 * ceil(log2 M)``,
and runs CONTROL 2 over macro-blocks against the ``(K*d, K*D)``-dense
constraint.  A macro-block access costs ``K`` ordinary page accesses,
and the translated cost works out to the same
``O(log^2 M / (D - d))`` bound (Theorem 5.7).

We realise this by instantiating an ordinary
:class:`~repro.core.control2.Control2Engine` whose "pages" are
macro-blocks, on a disk whose transfer cost is scaled by ``K``.
"""

from __future__ import annotations

import math
from typing import Optional

from ..storage.cost import CostModel, PAGE_ACCESS_MODEL
from ..storage.disk import SimulatedDisk
from .control2 import Control2Engine
from .errors import ConfigurationError
from .params import DensityParams, ceil_log2


def macro_block_factor(num_pages: int, d: int, D: int) -> int:
    """The least ``K`` with ``K * (D - d) > 3 * ceil(log2 M)`` (eq. 5.3)."""
    if D <= d:
        raise ConfigurationError("D must exceed d")
    return (3 * ceil_log2(num_pages)) // (D - d) + 1


def macro_params(
    num_pages: int, d: int, D: int, j: Optional[int] = None
) -> DensityParams:
    """Density parameters of the macro-block file for a physical file.

    Physical pages group into ``M# = ceil(M / K)`` macro-blocks with
    densities ``d# = K*d`` and ``D# = K*D``.
    """
    factor = macro_block_factor(num_pages, d, D)
    macro_pages = math.ceil(num_pages / factor)
    if macro_pages < 2:
        raise ConfigurationError(
            f"file too small for macro-blocks: M={num_pages}, K={factor} "
            f"leaves only {macro_pages} macro-block(s)"
        )
    return DensityParams(
        num_pages=macro_pages, d=factor * d, D=factor * D, j=j
    )


class MacroBlockControl2Engine(Control2Engine):
    """CONTROL 2 over macro-blocks, presenting macro-granular pages.

    The engine's ``params.num_pages`` counts macro-blocks; the physical
    geometry is retained in :attr:`physical_pages`, :attr:`physical_d`,
    :attr:`physical_D` and :attr:`block_factor`.  Record capacity is
    capped at the *physical* ``d * M`` so the wrapper honours the same
    contract as a plain engine on the same physical file.
    """

    algorithm_name = "CONTROL 2 (macro-blocks)"

    def __init__(
        self,
        num_pages: int,
        d: int,
        D: int,
        j: Optional[int] = None,
        model: CostModel = PAGE_ACCESS_MODEL,
        store=None,
    ):
        params = macro_params(num_pages, d, D, j=j)
        factor = macro_block_factor(num_pages, d, D)
        scaled = CostModel(
            transfer_cost=model.transfer_cost * factor,
            seek_base=model.seek_base,
            seek_per_page=model.seek_per_page * factor,
            seek_max=model.seek_max,
            contiguous_window=model.contiguous_window,
        )
        disk = SimulatedDisk(params.num_pages, scaled)
        super().__init__(params, disk=disk, store=store)
        self.physical_pages = num_pages
        self.physical_d = d
        self.physical_D = D
        self.block_factor = factor
        self._physical_cap = d * num_pages

    @property
    def physical_max_records(self) -> int:
        """The physical cardinality cap ``d * M`` (not ``d# * M#``)."""
        return self._physical_cap

    def insert(self, key, value=None) -> None:
        if self.size >= self._physical_cap:
            from .errors import FileFullError

            raise FileFullError(
                f"file already holds the physical cap d*M = {self._physical_cap}"
            )
        super().insert(key, value)

    def physical_page_accesses(self) -> int:
        """Macro accesses translated into physical page accesses."""
        return self.stats.page_accesses * self.block_factor
