"""Measurable-moment tracing for CONTROL 2.

Section 5 of the paper reasons about *measurable time instances*: the
moments just after CONTROL 2 finishes one of its steps 1, 2, 3, 4a, 4b
or 4c.  Moments of type 3, 4a and 4c are *flag-stable* (Fact 5.1 holds
there).  Example 5.2 / Figure 4 tabulates the page occupancies at a
sequence of flag-stable moments ``t0..t8``.

:class:`MomentRecorder` subscribes to an engine and snapshots the file at
selected moment types, which is how the benchmark suite reproduces
Figure 4 row by row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Moment types, named after the algorithm step that just completed.
STEP_1 = "1"
STEP_2 = "2"
STEP_3 = "3"
STEP_4A = "4a"
STEP_4B = "4b"
STEP_4C = "4c"

FLAG_STABLE_TYPES = frozenset({STEP_3, STEP_4A, STEP_4C})


@dataclass(frozen=True)
class Moment:
    """One recorded measurable moment."""

    index: int
    moment_type: str
    command_index: int
    occupancies: Tuple[int, ...]
    warnings: Tuple[int, ...]
    destinations: Tuple[Tuple[int, int], ...]

    @property
    def flag_stable(self) -> bool:
        return self.moment_type in FLAG_STABLE_TYPES

    def destination_of(self, node: int) -> Optional[int]:
        """DEST pointer of ``node`` at this moment, or ``None``."""
        for recorded_node, dest in self.destinations:
            if recorded_node == node:
                return dest
        return None


class MomentRecorder:
    """Collects :class:`Moment` snapshots emitted by an engine.

    Parameters
    ----------
    moment_types:
        Which moment types to keep.  Defaults to the flag-stable types,
        which is what Figure 4 tabulates.
    """

    def __init__(self, moment_types=FLAG_STABLE_TYPES):
        self.moment_types = frozenset(moment_types)
        self.moments: List[Moment] = []
        self._engine = None

    def attach(self, engine) -> "MomentRecorder":
        """Subscribe to ``engine`` (a Control2Engine); returns self."""
        engine.moment_listener = self.on_moment
        self._engine = engine
        return self

    def on_moment(self, moment_type: str, engine) -> None:
        """Engine callback: snapshot the state if the type is recorded."""
        if moment_type not in self.moment_types:
            return
        self.moments.append(
            Moment(
                index=len(self.moments),
                moment_type=moment_type,
                command_index=engine.commands_executed,
                occupancies=tuple(engine.pagefile.occupancies()),
                warnings=tuple(sorted(engine.calibrator.flagged_nodes())),
                destinations=tuple(sorted(engine.destinations.items())),
            )
        )

    def occupancy_rows(self) -> List[Tuple[int, ...]]:
        """The Figure 4 view: one occupancy tuple per recorded moment."""
        return [moment.occupancies for moment in self.moments]

    def distinct_occupancy_rows(self) -> List[Tuple[int, ...]]:
        """Occupancy rows with consecutive duplicates collapsed.

        Figure 4 labels one row per *interesting* flag-stable moment; the
        algorithm may pass through several flag-stable moments without
        moving any records, which would repeat the row.
        """
        rows: List[Tuple[int, ...]] = []
        for moment in self.moments:
            if not rows or rows[-1] != moment.occupancies:
                rows.append(moment.occupancies)
        return rows

    def clear(self) -> None:
        """Forget every recorded moment."""
        self.moments.clear()


@dataclass
class OperationLog:
    """Per-command cost series for the evaluation harness.

    Records, for every insertion/deletion command, the number of page
    accesses, records physically moved, and modelled cost charged while
    serving it.  Powering the worst-case/amortized experiments.
    """

    page_accesses: List[int] = field(default_factory=list)
    records_moved: List[int] = field(default_factory=list)
    costs: List[float] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)

    def append(self, accesses: int, moved: int, cost: float, label: str) -> None:
        """Record one command's accesses, record moves, cost and label."""
        self.page_accesses.append(accesses)
        self.records_moved.append(moved)
        self.costs.append(cost)
        self.labels.append(label)

    def __len__(self) -> int:
        return len(self.page_accesses)

    @property
    def worst_case_accesses(self) -> int:
        return max(self.page_accesses) if self.page_accesses else 0

    @property
    def amortized_accesses(self) -> float:
        if not self.page_accesses:
            return 0.0
        return sum(self.page_accesses) / len(self.page_accesses)

    @property
    def worst_case_moved(self) -> int:
        return max(self.records_moved) if self.records_moved else 0

    @property
    def amortized_moved(self) -> float:
        if not self.records_moved:
            return 0.0
        return sum(self.records_moved) / len(self.records_moved)
