"""Exception hierarchy for the dense-sequential-file library.

All library errors derive from :class:`ReproError` so that callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this package."""


class ConfigurationError(ReproError, ValueError):
    """Raised when construction parameters are inconsistent.

    Examples: ``d >= D``, a non-positive page count, or a ``J`` parameter
    that is too small to guarantee ``BALANCE(d, D)`` for the requested
    safety level.
    """


class UsageError(ReproError, ValueError):
    """Raised when a call's arguments or sequencing are invalid.

    The per-call sibling of :class:`ConfigurationError`: the object was
    built consistently, but this call misuses it — bulk-loading a
    non-empty file, moving records from a page to itself, passing both
    ``timeout=`` and ``deadline=``, or an out-of-order page extension.
    Subclasses :class:`ValueError` so pre-taxonomy callers keep working.
    """


class LockProtocolError(ReproError, RuntimeError):
    """Raised when the locking protocol is violated by the caller.

    Examples: releasing a read or write lock that was never acquired.
    These are programming errors in the calling code, not runtime
    conditions to retry; subclasses :class:`RuntimeError` for
    compatibility with pre-taxonomy callers.
    """


class FileFullError(ReproError):
    """Raised when an insertion would exceed the ``N = d * M`` record cap.

    The paper's Theorem 5.5 requires that the file cardinality never
    exceed ``d * M``; the library enforces that precondition explicitly
    rather than silently degrading.
    """


class DuplicateKeyError(ReproError, KeyError):
    """Raised when inserting a key that is already present.

    Dense sequential files in the paper store a *set* of records ordered
    by key, so keys are unique.
    """


class RecordNotFoundError(ReproError, KeyError):
    """Raised when deleting or updating a key that is not present."""


class InvariantViolationError(ReproError, AssertionError):
    """Raised by the invariant checkers when a structural invariant fails.

    The message names the violated invariant (sequential order,
    ``(d, D)``-density, ``BALANCE(d, D)``, or calibrator-counter
    consistency) and the offending node or page.
    """


class TransientIOError(ReproError, OSError):
    """A physical-layer operation failed but is safe to retry.

    Injected by :class:`~repro.storage.faults.FaultyStore` (standing in
    for the flaky reads and timeouts of real hardware) *before* the
    wrapped store is touched, so retrying the same operation is always
    idempotent.  :class:`~repro.storage.faults.RetryingStore` absorbs a
    bounded number of these per operation.
    """


class OperationTimeout(ReproError, TimeoutError):
    """An operation's deadline expired before the work completed.

    Raised by the concurrent front-end
    (:class:`~repro.concurrent.ThreadSafeDenseFile`) when a
    ``deadline=`` / ``timeout=`` budget runs out — whether the time was
    spent waiting for the reader-writer lock, queueing at the admission
    gate, or burning retry backoff inside a deadline-aware
    :class:`~repro.storage.faults.RetryingStore`.  The operation has
    either not started or (for storage retries) failed without side
    effects, so it is safe to resubmit with a fresh budget.
    """


class OverloadError(ReproError):
    """The admission gate refused an operation because the system is full.

    Raised *immediately* (fail fast, no queueing) when the bounded
    in-flight gate of :class:`~repro.concurrent.AdmissionGate` has both
    saturated its concurrency cap and filled its wait queue — or, in
    ``shed_load`` mode, as soon as a write would have to queue at all.
    Carries the observed pressure so clients and load balancers can
    back off intelligently.
    """

    def __init__(self, message: str, queue_depth: int = 0, in_flight: int = 0):
        super().__init__(message)
        #: Number of operations waiting at the gate when this was raised.
        self.queue_depth = queue_depth
        #: Number of operations admitted and still running.
        self.in_flight = in_flight


class ReplicationError(ReproError):
    """A replication-pipeline operation failed.

    Raised by :mod:`repro.replication` for transport faults (an
    undecodable shipped record, a publish that cannot reach the
    shipping directory), bootstrap misuse (seeding a replica from a
    primary with uncommitted dirty pages), and orchestration errors.
    Carries enough context to decide between retrying the ship and
    re-seeding the replica.
    """


class StaleReplicaError(ReplicationError):
    """A replica cannot serve: its applied state is behind or retired.

    Raised when a replay arrives with a sequence gap (records were
    lost in transport — the replica must be re-seeded, not patched),
    and on any read against a replica whose store has since been
    promoted (the new primary owns those pages now; the old handle
    would observe torn mid-commit states).
    """


class ClusterError(ReproError):
    """A sharded-cluster front-end operation failed.

    Base class for the network layer's taxonomy
    (:mod:`repro.cluster`): wire-protocol damage, shard outages and
    client-side circuit breaking all derive from here, so a caller can
    fence off "the cluster is unhappy" with one ``except`` clause while
    still branching on the precise failure.
    """


class WireProtocolError(ClusterError, ConnectionError):
    """A wire frame could not be parsed, or the peer vanished mid-message.

    Raised by :mod:`repro.cluster.wire` for truncated frames, bad
    magic/checksums, oversized payloads and response/request correlation
    mismatches (a reordered or stale response).  The connection is
    poisoned and must be re-established; the *request* is safe to retry
    on a fresh connection because every mutating request carries an
    idempotency token the server deduplicates on.
    """


class TransientNetworkError(ClusterError, OSError):
    """A network operation failed in a way that is safe to retry.

    The cluster analogue of :class:`TransientIOError`: dropped
    connections, request/response loss and injected chaos faults
    surface as this type so the client's
    :class:`~repro.concurrent.retry.RetryPolicy` loop can absorb a
    bounded number of them.  Mutations stay at-most-once under retry
    because the idempotency token is reused verbatim.
    """


class ShardUnavailableError(ClusterError):
    """An operation was routed to a shard that cannot serve it.

    Partial-failure degradation made explicit: a shard that is down, or
    degraded to read-only (``on_corruption="degrade"``), rejects the
    operations it cannot serve *immediately* — no queueing, no hanging —
    while every other shard keeps serving.  Carries the affected key
    ranges so routers and clients can redirect or shed exactly the
    traffic that cannot proceed.
    """

    def __init__(
        self,
        message: str,
        shard_ids: tuple = (),
        key_ranges: tuple = (),
        mode: str = "down",
    ):
        super().__init__(message)
        #: Shards that refused the operation.
        self.shard_ids = tuple(shard_ids)
        #: ``(lo, hi)`` key ranges (inclusive-exclusive) those shards own.
        self.key_ranges = tuple(key_ranges)
        #: ``"down"`` (nothing served) or ``"degraded"`` (reads only).
        self.mode = mode


class CircuitOpenError(ClusterError):
    """The client refused to send: the shard's circuit breaker is open.

    After repeated failures against one shard the client stops sending
    it traffic for a cooldown window (failing fast locally instead of
    burning its deadline budget on a shard that is known-bad), then
    lets a single half-open probe through.  Carries which shard and how
    long until the next probe so callers can back off intelligently.
    """

    def __init__(self, message: str, shard_id: int = -1, retry_after: float = 0.0):
        super().__init__(message)
        #: The shard whose breaker is open.
        self.shard_id = shard_id
        #: Seconds until the breaker will allow a half-open probe.
        self.retry_after = retry_after


class ReadOnlyError(ReproError, PermissionError):
    """A mutation was attempted on a file in read-only degraded mode.

    A :class:`~repro.persistent.PersistentDenseFile` degrades to
    read-only when it is opened over quarantined (unrepairable) pages:
    intact key ranges stay scannable, but updates are refused until
    ``repro scrub`` repairs the file or the operator restores it from a
    backup.  The message lists the quarantined pages.
    """
