"""CONTROL 2: worst-case insertion/deletion in dense sequential files.

This module implements Section 4 of the paper exactly: the ``WARNING``
flags, the ``DEST``/``SOURCE`` sweep pointers, the three subroutines
``SHIFT``, ``SELECT`` and ``ACTIVATE`` (with both roll-back rules), and
the four-step mainline of Figure 2.  Every density comparison goes
through the exact integer predicates of
:class:`~repro.core.params.DensityParams`, which is what lets the test
suite reproduce the paper's Example 5.2 / Figure 4 trace bit for bit.

Orientation conventions (matching the paper):

* ``DIR(v) = 1`` when ``v`` is a right son; its sweep moves records
  *leftward* (``DEST(v) < SOURCE(v)``).
* ``DIR(v) = 0`` when ``v`` is a left son; its sweep moves records
  *rightward*.
* Both pointers live inside ``RANGE(f_v)``, the range of ``v``'s father.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..storage.cost import CostModel, PAGE_ACCESS_MODEL
from ..storage.disk import SimulatedDisk
from .engine import BaseEngine
from .errors import UsageError
from .params import DensityParams
from .trace import STEP_1, STEP_2, STEP_3, STEP_4A, STEP_4B, STEP_4C


class Control2Engine(BaseEngine):
    """The paper's headline algorithm, CONTROL 2."""

    algorithm_name = "CONTROL 2"

    def __init__(
        self,
        params: DensityParams,
        disk: Optional[SimulatedDisk] = None,
        model: CostModel = PAGE_ACCESS_MODEL,
        store=None,
    ):
        super().__init__(params, disk=disk, model=model, store=store)
        #: DEST(v) for every node currently in a warning state.
        self.destinations: Dict[int, int] = {}
        #: SOURCE(v) as of the most recent SHIFT(v) (diagnostics only;
        #: the paper recomputes SOURCE at the start of every SHIFT).
        self.sources: Dict[int, int] = {}
        #: Count of SHIFT calls that found no source page (defensive;
        #: should stay 0 under the paper's preconditions).
        self.stuck_shifts = 0
        #: Count of SHIFT calls executed.
        self.shift_calls = 0
        #: Optional callback ``(moment_type, engine)`` fired after each
        #: algorithm step; used by the MomentRecorder.
        self.moment_listener: Optional[Callable[[str, "Control2Engine"], None]] = None

    # ------------------------------------------------------------------
    # moments
    # ------------------------------------------------------------------

    def _notify(self, moment_type: str) -> None:
        if self.moment_listener is not None:
            self.moment_listener(moment_type, self)

    # ------------------------------------------------------------------
    # warning-state helpers
    # ------------------------------------------------------------------

    def is_warning(self, node: int) -> bool:
        """``WARNING(v)`` of the paper."""
        return self.calibrator.flag[node]

    def _density_at_least(self, node: int, thirds: int) -> bool:
        tree = self.calibrator
        return self.params.density_at_least(
            tree.count[node], tree.pages_in(node), tree.depth[node], thirds
        )

    def _density_at_most(self, node: int, thirds: int) -> bool:
        tree = self.calibrator
        return self.params.density_at_most(
            tree.count[node], tree.pages_in(node), tree.depth[node], thirds
        )

    def _lower_flag(self, node: int) -> None:
        self.calibrator.set_flag(node, False)
        self.destinations.pop(node, None)
        self.sources.pop(node, None)

    def _lower_flags_if_sparse(self, nodes) -> None:
        """Figure 2 steps 2 / 4c: drop flags where ``p <= g(., 1/3)``."""
        for node in nodes:
            if self.calibrator.flag[node] and self._density_at_most(node, 1):
                self._lower_flag(node)

    # ------------------------------------------------------------------
    # ACTIVATE(w)  (Section 4, including both roll-back rules)
    # ------------------------------------------------------------------

    def _activate(self, node: int) -> None:
        """Raise ``node`` into a warning state and roll back conflicting sweeps."""
        tree = self.calibrator
        father = tree.parent[node]
        if father < 0:
            raise UsageError("the root is never activated")
        tree.set_flag(node, True)
        if tree.is_right_child(node):
            self.destinations[node] = tree.lo[father]
        else:
            self.destinations[node] = tree.hi[father]
        self._roll_back_conflicting(father)

    def _roll_back_conflicting(self, father: int) -> None:
        """Apply roll-back rules 0/1 to warning nodes sweeping over ``father``.

        A warning node ``y`` conflicts when ``RANGE(f_y)`` strictly
        contains ``RANGE(f_w)`` and ``DEST(y)`` sits inside the activated
        father's range (exclusive of the far boundary on ``y``'s own
        side).  Rolling ``DEST(y)`` back to the near boundary of
        ``RANGE(f_w)`` puts ``y``'s sweep in position to repair anything
        the new sweep may later undo.
        """
        tree = self.calibrator
        lo = tree.lo[father]
        hi = tree.hi[father]
        ancestor = tree.parent[father]
        while ancestor >= 0:
            for candidate in (tree.left[ancestor], tree.right[ancestor]):
                if candidate < 0 or not self.calibrator.flag[candidate]:
                    continue
                dest = self.destinations.get(candidate)
                if dest is None:
                    continue
                if tree.is_right_child(candidate):
                    # Roll-back rule 1: leftward sweep.
                    if lo + 1 <= dest <= hi:
                        self.destinations[candidate] = lo
                else:
                    # Roll-back rule 0: rightward sweep.
                    if lo <= dest <= hi - 1:
                        self.destinations[candidate] = hi
            ancestor = tree.parent[ancestor]

    # ------------------------------------------------------------------
    # SELECT(L)
    # ------------------------------------------------------------------

    def _select(self, leaf_page: int) -> Optional[int]:
        """Pick the next node to shift, per the paper's SELECT(L).

        Step 1 finds the lowest ancestor ``alpha`` of the command's leaf
        with a warning proper descendant; step 2 returns the deepest
        warning descendant of ``alpha`` (smallest ``A-`` on depth ties).
        Returns ``None`` when no node is in a warning state.
        """
        alpha = self.calibrator.lowest_ancestor_with_flagged_proper_descendant(
            leaf_page
        )
        if alpha is None:
            return None
        return self.calibrator.deepest_flagged_descendant(alpha)

    # ------------------------------------------------------------------
    # SHIFT(v)
    # ------------------------------------------------------------------

    def _shift(self, node: int) -> List[int]:
        """Perform one SHIFT on warning node ``node``.

        Returns the list of calibrator nodes whose counters changed (the
        set step 4c must re-examine).  Implements the three steps of the
        paper's SHIFT: recompute SOURCE, move the maximal batch of
        records allowed by the ``p(x) >= g(x, 0)`` guards, then advance
        DEST past the least-depth saturated guard node.
        """
        self.shift_calls += 1
        tree = self.calibrator
        father = tree.parent[node]
        dest = self.destinations[node]
        moving_left = tree.is_right_child(node)  # DIR(v) == 1

        # --- step 1: SOURCE(v) -------------------------------------------
        if moving_left:
            source = self.pagefile.next_nonempty_right(dest)
            if source is not None and source > tree.hi[father]:
                source = None
        else:
            source = self.pagefile.next_nonempty_left(dest)
            if source is not None and source < tree.lo[father]:
                source = None
        if source is None:
            # Defensive: no records beyond DEST inside RANGE(f_v).  The
            # paper's preconditions make this unreachable; count it so
            # the test suite can assert that it never fires.
            self.stuck_shifts += 1
            return []
        self.sources[node] = source

        # --- step 2: bounded record movement ------------------------------
        guards = tree.nodes_separating(dest, source)  # the paper's UP(v)
        headroom = None
        for guard in guards:
            limit = self.params.threshold_count(
                tree.pages_in(guard), tree.depth[guard], 0
            )
            room = limit - tree.count[guard]
            if headroom is None or room < headroom:
                headroom = room
        movable = min(self.pagefile.page_len(source), max(0, headroom))
        changed: List[int] = []
        if movable > 0:
            moved = self.pagefile.move_records(source, dest, movable)
            self.records_moved_total += moved
            changed = tree.transfer(source, dest, moved)

        # --- step 3: advance DEST past the saturated guard ----------------
        saturated = None
        for guard in reversed(guards):  # shallowest first
            if self._density_at_least(guard, 0):
                saturated = guard
                break
        if saturated is not None:
            if moving_left:
                self.destinations[node] = tree.hi[saturated] + 1
            else:
                self.destinations[node] = tree.lo[saturated] - 1
        return changed

    # ------------------------------------------------------------------
    # the Figure 2 mainline (steps 2-4 after the shared step 1)
    # ------------------------------------------------------------------

    def _run_steps_2_to_4(self, page: int) -> None:
        tree = self.calibrator
        path = tree.path_from_leaf(page)
        self._notify(STEP_1)

        # Step 2: lower warning flags that fell to p <= g(., 1/3).
        self._lower_flags_if_sparse(path)
        self._notify(STEP_2)

        # Step 3: raise warnings (deepest first, as in Example 5.2) for
        # non-root, non-warning nodes that reached p >= g(., 2/3).
        for node in path:
            if tree.parent[node] < 0:
                continue
            if not tree.flag[node] and self._density_at_least(node, 2):
                self._activate(node)
        self._notify(STEP_3)

        # Step 4: J iterations of SELECT / SHIFT / flag-lowering.  The
        # calibrator's O(1) any_flagged() skips the O(log M) SELECT walk
        # in the (common) flag-free steady state; the moment sequence is
        # unchanged because SELECT returns None exactly then.
        for _ in range(self.params.shift_budget):
            target = self._select(page) if tree.any_flagged() else None
            self._notify(STEP_4A)
            if target is None:
                break
            changed = self._shift(target)
            self._notify(STEP_4B)
            self._lower_flags_if_sparse(changed)
            self._notify(STEP_4C)

    def _after_insert(self, page: int) -> None:
        self._run_steps_2_to_4(page)

    def _after_delete(self, page: int) -> None:
        self._run_steps_2_to_4(page)

    def _after_bulk_delete(self, touched_pages) -> None:
        """Bulk analogue of step 2: lower flags over every touched path."""
        seen = set()
        for page in touched_pages:
            for node in self.calibrator.path_from_leaf(page):
                if node in seen:
                    break
                seen.add(node)
        self._lower_flags_if_sparse(seen)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def warning_nodes(self) -> List[int]:
        """Node ids currently in a warning state."""
        return self.calibrator.flagged_nodes()

    def describe_warnings(self) -> List[str]:
        """Human-readable warning-state summary (for examples/debugging)."""
        tree = self.calibrator
        lines = []
        for node in self.warning_nodes():
            lo, hi, depth, count = tree.describe(node)
            lines.append(
                f"node {node} range=[{lo},{hi}] depth={depth} N={count} "
                f"DEST={self.destinations.get(node)}"
            )
        return lines
