"""CONTROL 2: worst-case insertion/deletion in dense sequential files.

This module implements Section 4 of the paper exactly: the ``WARNING``
flags, the ``DEST``/``SOURCE`` sweep pointers, the three subroutines
``SHIFT``, ``SELECT`` and ``ACTIVATE`` (with both roll-back rules), and
the four-step mainline of Figure 2.  Every density comparison goes
through the exact integer predicates of
:class:`~repro.core.params.DensityParams`, which is what lets the test
suite reproduce the paper's Example 5.2 / Figure 4 trace bit for bit.

Orientation conventions (matching the paper):

* ``DIR(v) = 1`` when ``v`` is a right son; its sweep moves records
  *leftward* (``DEST(v) < SOURCE(v)``).
* ``DIR(v) = 0`` when ``v`` is a left son; its sweep moves records
  *rightward*.
* Both pointers live inside ``RANGE(f_v)``, the range of ``v``'s father.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..storage.cost import CostModel, PAGE_ACCESS_MODEL
from ..storage.disk import SimulatedDisk
from .engine import BaseEngine
from .errors import UsageError
from .params import DensityParams
from .trace import STEP_1, STEP_2, STEP_3, STEP_4A, STEP_4B, STEP_4C


class Control2Engine(BaseEngine):
    """The paper's headline algorithm, CONTROL 2."""

    algorithm_name = "CONTROL 2"

    def __init__(
        self,
        params: DensityParams,
        disk: Optional[SimulatedDisk] = None,
        model: CostModel = PAGE_ACCESS_MODEL,
        store=None,
    ):
        super().__init__(params, disk=disk, model=model, store=store)
        #: DEST(v) for every node currently in a warning state.
        self.destinations: Dict[int, int] = {}
        #: SOURCE(v) as of the most recent SHIFT(v) (diagnostics only;
        #: the paper recomputes SOURCE at the start of every SHIFT).
        self.sources: Dict[int, int] = {}
        #: Count of SHIFT calls that found no source page (defensive;
        #: should stay 0 under the paper's preconditions).
        self.stuck_shifts = 0
        #: Count of SHIFT calls executed.
        self.shift_calls = 0
        #: Optional callback ``(moment_type, engine)`` fired after each
        #: algorithm step; used by the MomentRecorder.
        self.moment_listener: Optional[Callable[[str, "Control2Engine"], None]] = None
        self._precompute_thresholds()

    def _precompute_thresholds(self) -> None:
        """Reduce every ``g(v, r)`` comparison to one integer compare.

        The calibrator's shape (depth and page span per node id) is
        fixed at construction, so for each node and each ``thirds`` in
        {0..3} the exact tests of :class:`DensityParams` collapse to a
        precomputed per-node record-count threshold:

        * ``p(v) >= g(v, thirds/3)``  iff  ``N_v >= ceil(rhs / 3L)``
        * ``p(v) <= g(v, thirds/3)``  iff  ``N_v <= floor(rhs / 3L)``

        with ``rhs = coefficient(depth, thirds) * M_v`` and ``3L > 0``.
        Both reductions are exact for integer ``N_v``, so the control
        decisions stay bit-identical to the un-flattened predicates.
        """
        tree = self.calibrator
        params = self.params
        denominator = 3 * params.log_m
        nodes = len(tree.lo)
        self._ge_thresholds: List[List[int]] = []
        self._le_thresholds: List[List[int]] = []
        for thirds in range(4):
            at_least = [0] * nodes
            at_most = [0] * nodes
            for node in range(nodes):
                rhs = params._coefficient(tree.depth[node], thirds) * (
                    tree.hi[node] - tree.lo[node] + 1
                )
                at_least[node] = -(-rhs // denominator)
                at_most[node] = rhs // denominator
            self._ge_thresholds.append(at_least)
            self._le_thresholds.append(at_most)
        #: ``params.threshold_count(M_v, depth, 0)`` per node — the SHIFT
        #: step-2 guard capacity (clamped at zero, like the original).
        self._guard_limits = [max(0, limit) for limit in self._ge_thresholds[0]]
        self._shift_budget = params.shift_budget
        #: Per page, the step-3 scan pre-resolved: ``(node, g(v, 2/3))``
        #: for every non-root node on the page's leaf-to-root path (the
        #: root is the last entry of each path and is never activated).
        #: Step 3 then needs one count lookup per node and nothing else.
        warn_at = self._ge_thresholds[2]
        self._step3_pairs: List[Tuple[Tuple[int, int], ...]] = [
            tuple((node, warn_at[node]) for node in path[:-1])
            for path in tree.paths
        ]

    # ------------------------------------------------------------------
    # moments
    # ------------------------------------------------------------------

    def _notify(self, moment_type: str) -> None:
        if self.moment_listener is not None:
            self.moment_listener(moment_type, self)

    # ------------------------------------------------------------------
    # warning-state helpers
    # ------------------------------------------------------------------

    def is_warning(self, node: int) -> bool:
        """``WARNING(v)`` of the paper."""
        return self.calibrator.flag[node]

    def _density_at_least(self, node: int, thirds: int) -> bool:
        return self.calibrator.count[node] >= self._ge_thresholds[thirds][node]

    def _density_at_most(self, node: int, thirds: int) -> bool:
        return self.calibrator.count[node] <= self._le_thresholds[thirds][node]

    def _lower_flag(self, node: int) -> None:
        self.calibrator.set_flag(node, False)
        self.destinations.pop(node, None)
        self.sources.pop(node, None)

    def _lower_flags_if_sparse(self, nodes) -> None:
        """Figure 2 steps 2 / 4c: drop flags where ``p <= g(., 1/3)``."""
        tree = self.calibrator
        if not tree.flags_below[0]:
            return  # no flag anywhere -> nothing can be lowered
        flag = tree.flag
        count = tree.count
        sparse_at = self._le_thresholds[1]
        for node in nodes:
            if flag[node] and count[node] <= sparse_at[node]:
                self._lower_flag(node)

    # ------------------------------------------------------------------
    # ACTIVATE(w)  (Section 4, including both roll-back rules)
    # ------------------------------------------------------------------

    def _activate(self, node: int) -> None:
        """Raise ``node`` into a warning state and roll back conflicting sweeps."""
        tree = self.calibrator
        father = tree.parent[node]
        if father < 0:
            raise UsageError("the root is never activated")
        tree.set_flag(node, True)
        if tree.is_right_child(node):
            self.destinations[node] = tree.lo[father]
        else:
            self.destinations[node] = tree.hi[father]
        self._roll_back_conflicting(father)

    def _roll_back_conflicting(self, father: int) -> None:
        """Apply roll-back rules 0/1 to warning nodes sweeping over ``father``.

        A warning node ``y`` conflicts when ``RANGE(f_y)`` strictly
        contains ``RANGE(f_w)`` and ``DEST(y)`` sits inside the activated
        father's range (exclusive of the far boundary on ``y``'s own
        side).  Rolling ``DEST(y)`` back to the near boundary of
        ``RANGE(f_w)`` puts ``y``'s sweep in position to repair anything
        the new sweep may later undo.
        """
        tree = self.calibrator
        lo = tree.lo[father]
        hi = tree.hi[father]
        ancestor = tree.parent[father]
        while ancestor >= 0:
            for candidate in (tree.left[ancestor], tree.right[ancestor]):
                if candidate < 0 or not self.calibrator.flag[candidate]:
                    continue
                dest = self.destinations.get(candidate)
                if dest is None:
                    continue
                if tree.is_right_child(candidate):
                    # Roll-back rule 1: leftward sweep.
                    if lo + 1 <= dest <= hi:
                        self.destinations[candidate] = lo
                else:
                    # Roll-back rule 0: rightward sweep.
                    if lo <= dest <= hi - 1:
                        self.destinations[candidate] = hi
            ancestor = tree.parent[ancestor]

    # ------------------------------------------------------------------
    # SELECT(L)
    # ------------------------------------------------------------------

    def _select(self, leaf_page: int) -> Optional[int]:
        """Pick the next node to shift, per the paper's SELECT(L).

        Step 1 finds the lowest ancestor ``alpha`` of the command's leaf
        with a warning proper descendant; step 2 returns the deepest
        warning descendant of ``alpha`` (smallest ``A-`` on depth ties).
        Returns ``None`` when no node is in a warning state.
        """
        flagged = self.calibrator.flagged_set
        if len(flagged) == 1:
            # With exactly one warning node W (not the root, which
            # ACTIVATE never flags), SELECT provably returns W for
            # every leaf: alpha exists (the root has W as a proper
            # descendant, and the leaf-to-root walk reaches it) and W
            # is the only candidate in any alpha's subtree.  This skips
            # the two tree walks on the commonest step-4 state — the
            # single warning step 3 just raised.
            for node in flagged:
                if node:
                    return node
        alpha = self.calibrator.lowest_ancestor_with_flagged_proper_descendant(
            leaf_page
        )
        if alpha is None:
            return None
        return self.calibrator.deepest_flagged_descendant(alpha)

    # ------------------------------------------------------------------
    # SHIFT(v)
    # ------------------------------------------------------------------

    def _shift(self, node: int) -> List[int]:
        """Perform one SHIFT on warning node ``node``.

        Returns the list of calibrator nodes whose counters changed (the
        set step 4c must re-examine).  Implements the three steps of the
        paper's SHIFT: recompute SOURCE, move the maximal batch of
        records allowed by the ``p(x) >= g(x, 0)`` guards, then advance
        DEST past the least-depth saturated guard node.
        """
        self.shift_calls += 1
        tree = self.calibrator
        father = tree.parent[node]
        dest = self.destinations[node]
        moving_left = tree.is_right_child(node)  # DIR(v) == 1

        # --- step 1: SOURCE(v) -------------------------------------------
        if moving_left:
            source = self.pagefile.next_nonempty_right(dest)
            if source is not None and source > tree.hi[father]:
                source = None
        else:
            source = self.pagefile.next_nonempty_left(dest)
            if source is not None and source < tree.lo[father]:
                source = None
        if source is None:
            # Defensive: no records beyond DEST inside RANGE(f_v).  The
            # paper's preconditions make this unreachable; count it so
            # the test suite can assert that it never fires.
            self.stuck_shifts += 1
            return []
        self.sources[node] = source

        # --- step 2: bounded record movement ------------------------------
        guards = tree.nodes_separating(dest, source)  # the paper's UP(v)
        limits = self._guard_limits
        count = tree.count
        headroom = None
        for guard in guards:
            room = limits[guard] - count[guard]
            if headroom is None or room < headroom:
                headroom = room
        movable = min(self.pagefile.page_len(source), max(0, headroom))
        changed: List[int] = []
        if movable > 0:
            moved = self.pagefile.move_records(source, dest, movable)
            self.records_moved_total += moved
            # ``guards`` is exactly nodes_separating(dest, source), so
            # transfer can reuse it instead of re-walking the tree.
            changed = tree.transfer(source, dest, moved, dest_nodes=guards)

        # --- step 3: advance DEST past the saturated guard ----------------
        saturated = None
        full_at = self._ge_thresholds[0]
        for guard in reversed(guards):  # shallowest first
            if count[guard] >= full_at[guard]:  # p(x) >= g(x, 0)
                saturated = guard
                break
        if saturated is not None:
            if moving_left:
                self.destinations[node] = tree.hi[saturated] + 1
            else:
                self.destinations[node] = tree.lo[saturated] - 1
        return changed

    # ------------------------------------------------------------------
    # the Figure 2 mainline (steps 2-4 after the shared step 1)
    # ------------------------------------------------------------------

    def _run_steps_2_to_4(self, page: int) -> None:
        # This is the per-command maintenance loop — the single hottest
        # code path in the repository — so it trades a little repetition
        # for flatness: the moment listener is guarded inline instead of
        # through _notify, and the density tests read the precomputed
        # per-node thresholds directly.
        tree = self.calibrator
        path = tree.paths[page]
        listener = self.moment_listener
        if listener is not None:
            listener(STEP_1, self)

        # Step 2: lower warning flags that fell to p <= g(., 1/3).
        flag = tree.flag
        count = tree.count
        if tree.flags_below[0]:
            sparse_at = self._le_thresholds[1]
            for node in path:
                if flag[node] and count[node] <= sparse_at[node]:
                    self._lower_flag(node)
        if listener is not None:
            listener(STEP_2, self)

        # Step 3: raise warnings (deepest first, as in Example 5.2) for
        # non-root, non-warning nodes that reached p >= g(., 2/3).  The
        # pairs pre-resolve both the root exclusion and the per-node
        # threshold; the count test runs first because it is the one
        # that is almost always False.
        for node, warn_limit in self._step3_pairs[page]:
            if count[node] >= warn_limit and not flag[node]:
                self._activate(node)
        if listener is not None:
            listener(STEP_3, self)

        # Step 4: J iterations of SELECT / SHIFT / flag-lowering.  The
        # calibrator's O(1) flags_below[0] skips the O(log M) SELECT walk
        # in the (common) flag-free steady state; the moment sequence is
        # unchanged because SELECT returns None exactly then.
        flags_below = tree.flags_below
        if listener is None and not flags_below[0]:
            # Flag-free steady state with nobody observing moments:
            # the first SELECT would return None and break immediately.
            return
        for _ in range(self._shift_budget):
            target = self._select(page) if flags_below[0] else None
            if listener is not None:
                listener(STEP_4A, self)
            if target is None:
                break
            changed = self._shift(target)
            if listener is not None:
                listener(STEP_4B, self)
            self._lower_flags_if_sparse(changed)
            if listener is not None:
                listener(STEP_4C, self)

    # Both after-hooks *are* the Figure 2 mainline; aliasing (rather
    # than delegating) saves a stack frame on every command.  A subclass
    # that overrides _run_steps_2_to_4 must restate these two aliases
    # and the fused _apply_insert/_apply_delete pair below.
    _after_insert = _run_steps_2_to_4
    _after_delete = _run_steps_2_to_4

    # -- fused counter bump + maintenance ------------------------------
    #
    # In the flag-free steady state (the overwhelmingly common one: a
    # warning raised by step 3 is resolved by step 4 within the same
    # command) the unfused sequence walks the calibrator path twice —
    # once in ``add`` and once in the step-3 scan — and steps 2 and 4
    # are no-ops.  The overrides below do both walks in one, with the
    # same node order (leaf first, root last) and the same state
    # transitions; any entry flag or attached moment listener falls
    # back to the verbatim sequence.

    def _apply_insert(self, page: int) -> None:
        tree = self.calibrator
        if self.moment_listener is not None or tree.flags_below[0]:
            tree.add(page, 1)
            self._run_steps_2_to_4(page)
            return
        count = tree.count
        flag = tree.flag
        activated = False
        for node, warn_limit in self._step3_pairs[page]:
            updated = count[node] + 1
            count[node] = updated
            if updated >= warn_limit and not flag[node]:
                self._activate(node)
                activated = True
        count[0] += 1  # the root: on every path, never activated
        if activated:
            self._run_step_4_quiet(page)

    def _apply_delete(self, page: int) -> None:
        tree = self.calibrator
        if self.moment_listener is not None or tree.flags_below[0]:
            tree.add(page, -1)
            self._run_steps_2_to_4(page)
            return
        count = tree.count
        flag = tree.flag
        activated = False
        for node, warn_limit in self._step3_pairs[page]:
            updated = count[node] - 1
            if updated < 0:
                raise UsageError(f"negative rank counter at node {node}")
            count[node] = updated
            if updated >= warn_limit and not flag[node]:
                self._activate(node)
                activated = True
        updated = count[0] - 1
        if updated < 0:
            raise UsageError("negative rank counter at node 0")
        count[0] = updated
        if activated:
            self._run_step_4_quiet(page)

    def _run_step_4_quiet(self, page: int) -> None:
        """Figure 2 step 4 with no listener attached (fused-path tail)."""
        flags_below = self.calibrator.flags_below
        for _ in range(self._shift_budget):
            if not flags_below[0]:
                break
            target = self._select(page)
            if target is None:
                break
            changed = self._shift(target)
            self._lower_flags_if_sparse(changed)

    def _after_bulk_delete(self, touched_pages) -> None:
        """Bulk analogue of step 2: lower flags over every touched path."""
        seen = set()
        for page in touched_pages:
            for node in self.calibrator.paths[page]:
                if node in seen:
                    break
                seen.add(node)
        self._lower_flags_if_sparse(seen)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def warning_nodes(self) -> List[int]:
        """Node ids currently in a warning state."""
        return self.calibrator.flagged_nodes()

    def describe_warnings(self) -> List[str]:
        """Human-readable warning-state summary (for examples/debugging)."""
        tree = self.calibrator
        lines = []
        for node in self.warning_nodes():
            lo, hi, depth, count = tree.describe(node)
            lines.append(
                f"node {node} range=[{lo},{hi}] depth={depth} N={count} "
                f"DEST={self.destinations.get(node)}"
            )
        return lines
