"""Core algorithms: the calibrator, CONTROL 1, CONTROL 2 and the facade."""

from .adaptive import AdaptiveControl2Engine
from .calibrator import CalibratorTree
from .control1 import Control1Engine
from .control2 import Control2Engine
from .dense_file import DenseSequentialFile, build_engine
from .errors import (
    CircuitOpenError,
    ClusterError,
    ConfigurationError,
    DuplicateKeyError,
    FileFullError,
    InvariantViolationError,
    LockProtocolError,
    OperationTimeout,
    OverloadError,
    ReadOnlyError,
    RecordNotFoundError,
    ReplicationError,
    ReproError,
    ShardUnavailableError,
    StaleReplicaError,
    TransientIOError,
    TransientNetworkError,
    UsageError,
    WireProtocolError,
)
from .macroblock import (
    MacroBlockControl2Engine,
    macro_block_factor,
    macro_params,
)
from .params import DensityParams, ceil_log2, recommended_j
from .trace import Moment, MomentRecorder, OperationLog

__all__ = [
    "AdaptiveControl2Engine",
    "CalibratorTree",
    "CircuitOpenError",
    "ClusterError",
    "ConfigurationError",
    "Control1Engine",
    "Control2Engine",
    "DenseSequentialFile",
    "DensityParams",
    "DuplicateKeyError",
    "FileFullError",
    "InvariantViolationError",
    "LockProtocolError",
    "MacroBlockControl2Engine",
    "Moment",
    "MomentRecorder",
    "OperationLog",
    "OperationTimeout",
    "OverloadError",
    "ReadOnlyError",
    "RecordNotFoundError",
    "ReplicationError",
    "ReproError",
    "ShardUnavailableError",
    "StaleReplicaError",
    "TransientIOError",
    "TransientNetworkError",
    "UsageError",
    "WireProtocolError",
    "build_engine",
    "ceil_log2",
    "macro_block_factor",
    "macro_params",
    "recommended_j",
]
