"""Shared machinery for the CONTROL 1 and CONTROL 2 engines.

Both algorithms share step 1 of the paper's Figure 2 verbatim: binary
search for the affected page, apply the insertion or deletion, and
adjust the calibrator's rank counters.  They differ only in how they
react afterwards (amortized rebalance vs bounded shifting), which the
subclasses implement in :meth:`BaseEngine._after_insert` and
:meth:`BaseEngine._after_delete`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..records import Record, ensure_record
from ..storage.backend import PageStore
from ..storage.cost import CostModel, PAGE_ACCESS_MODEL
from ..storage.disk import SimulatedDisk
from ..storage.pagefile import PageFile
from .calibrator import CalibratorTree
from .errors import FileFullError, RecordNotFoundError, UsageError
from .params import DensityParams
from .trace import OperationLog


class BaseEngine:
    """Common state and step 1 for dense-file maintenance algorithms.

    ``disk`` meters *logical* page accesses (the quantity the paper's
    theorems bound); ``store`` decides where pages physically live — any
    :class:`~repro.storage.backend.PageStore` backend.  The two are
    independent: every engine produces identical logical costs on every
    backend.
    """

    #: Subclasses override with their paper name ("CONTROL 1" / "CONTROL 2").
    algorithm_name = "abstract"

    def __init__(
        self,
        params: DensityParams,
        disk: Optional[SimulatedDisk] = None,
        model: CostModel = PAGE_ACCESS_MODEL,
        store: Optional[PageStore] = None,
    ):
        self.params = params
        if disk is None:
            disk = SimulatedDisk(params.num_pages, model)
        self.disk = disk
        self.pagefile = PageFile(params.num_pages, disk=disk, store=store)
        self.calibrator = CalibratorTree(params.num_pages)
        # params is frozen; cache the derived cap so the per-command
        # admission check does not recompute the property each time.
        self._max_records = params.max_records
        # First-insert landing page for an empty file (growth stays
        # symmetric when the file starts in the middle).
        self._middle_page = (params.num_pages + 1) // 2
        self.size = 0
        self.commands_executed = 0
        self.records_moved_total = 0
        self.operation_log: Optional[OperationLog] = None

    @property
    def store(self) -> PageStore:
        """The physical backend under this engine's page file."""
        return self.pagefile.store

    # ------------------------------------------------------------------
    # hooks implemented by the concrete algorithms
    # ------------------------------------------------------------------

    def _after_insert(self, page: int) -> None:
        raise NotImplementedError

    def _after_delete(self, page: int) -> None:
        raise NotImplementedError

    # The rank-counter bump and the after-hook always run back to back,
    # so they are routed through one overridable seam: CONTROL 2 fuses
    # the two walks over the calibrator path into one (identical state
    # transitions), everything else uses this default pair.

    def _apply_insert(self, page: int) -> None:
        self.calibrator.add(page, 1)
        self._after_insert(page)

    def _apply_delete(self, page: int) -> None:
        self.calibrator.add(page, -1)
        self._after_delete(page)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def bulk_load(self, records) -> None:
        """Load records with the uniform density Theorem 5.5 assumes.

        Records are sorted and spread so that page ``i`` receives
        ``floor(i*n/M) - floor((i-1)*n/M)`` records: as even a spread as
        integer counts allow.  Only valid on an empty file.
        """
        if self.size:
            raise UsageError("bulk_load requires an empty file")
        loaded = sorted(
            (ensure_record(item) for item in records),
            key=lambda record: record.key,
        )
        if len(loaded) > self.params.max_records:
            raise FileFullError(
                f"{len(loaded)} records exceed the cap N = "
                f"{self.params.max_records}"
            )
        total = len(loaded)
        pages = self.params.num_pages
        cursor = 0
        for page in range(1, pages + 1):
            upto = (page * total) // pages
            chunk = loaded[cursor:upto]
            cursor = upto
            if chunk:
                self.pagefile.load_page(page, chunk)
                self.calibrator.add(page, len(chunk))
        self.size = total

    def load_occupancies(self, occupancies, key_start: int = 0, key_gap: int = 1):
        """Load synthetic integer-keyed records page by page.

        ``occupancies[i]`` records go to page ``i+1``, with keys ascending
        across the whole file starting at ``key_start`` and separated by
        ``key_gap``.  Used to set up paper examples and tests.  Returns
        the list of loaded records.
        """
        if self.size:
            raise UsageError("load_occupancies requires an empty file")
        if len(occupancies) != self.params.num_pages:
            raise UsageError("need one occupancy per page")
        records = []
        key = key_start
        for index, count in enumerate(occupancies):
            page = index + 1
            chunk = []
            for _ in range(count):
                chunk.append(Record(key))
                key += key_gap
            if chunk:
                self.pagefile.load_page(page, chunk)
                self.calibrator.add(page, len(chunk))
                records.extend(chunk)
        self.size = len(records)
        if self.size > self.params.max_records:
            raise FileFullError("occupancies exceed the cap N = d*M")
        return records

    def restore_from_store(self) -> int:
        """Adopt the backend's materialized pages as this engine's state.

        The recovery path of the durable backends: a freshly constructed
        engine whose :class:`~repro.storage.backend.PageStore` already
        holds records (loaded from disk) rebuilds the in-core directory,
        the calibrator's rank counters and ``size`` from them, free of
        logical charges — restoring a file is not a command.  Returns
        the number of records found.
        """
        if self.size:
            raise UsageError("restore_from_store requires a fresh engine")
        total = self.pagefile.rebuild_directory()
        for page in self.pagefile.nonempty_pages():
            self.calibrator.add(page, self.pagefile.page_len(page))
        self.size = total
        return total

    # ------------------------------------------------------------------
    # step 1 plumbing
    # ------------------------------------------------------------------

    def _target_page_for_insert(self, key) -> int:
        located = self.pagefile.locate(key)
        if located is None:
            # Empty file: start in the middle so growth is symmetric.
            return self._middle_page
        return located

    def _begin_command(self, label: str) -> None:
        if self.operation_log is not None:
            self.disk.stats.checkpoint("op")
            self._moved_mark = self.records_moved_total
            self._op_label = label

    def _end_command(self) -> None:
        self.commands_executed += 1
        if self.operation_log is not None:
            self._append_op_log()

    def _append_op_log(self) -> None:
        """Flush one command's deltas to the operation log."""
        delta = self.disk.stats.delta("op")
        self.operation_log.append(
            accesses=delta.page_accesses,
            moved=self.records_moved_total - self._moved_mark,
            cost=delta.cost,
            label=self._op_label,
        )

    # ------------------------------------------------------------------
    # public update API
    # ------------------------------------------------------------------

    def insert(self, key, value=None) -> None:
        """Insert a record (paper command ``Z`` of insertion type)."""
        if self.size >= self._max_records:
            raise FileFullError(
                f"file already holds N = {self.params.max_records} records"
            )
        # The mainline below is the unfused sequence _target_page_for_
        # insert + insert_kv + add, flattened through the page file's
        # fused command path (identical charges, state and exceptions) —
        # this is the single hottest loop of ``repro bench``.
        logging = self.operation_log is not None
        if logging:
            self._begin_command("insert")
        page = self.pagefile.command_insert(key, value, self._middle_page)
        self.size += 1
        self._apply_insert(page)
        self.commands_executed += 1
        if logging:
            self._append_op_log()

    def insert_at_page(self, page: int, key, value=None) -> None:
        """Insert directly into ``page``, bypassing the key search.

        This is how the paper's Example 5.2 phrases commands ("insert a
        record into the page 8"); the caller is responsible for choosing
        a page consistent with sequential key order.
        """
        if self.size >= self._max_records:
            raise FileFullError(
                f"file already holds N = {self.params.max_records} records"
            )
        self._begin_command("insert")
        self.pagefile.insert_kv(page, key, value)
        self.size += 1
        self._apply_insert(page)
        self._end_command()

    def delete(self, key) -> Record:
        """Delete the record with ``key`` (command ``Z`` of deletion type)."""
        logging = self.operation_log is not None
        if logging:
            self._begin_command("delete")
        try:
            page, record = self.pagefile.command_delete(key)
        except RecordNotFoundError:
            # Same contract as the unfused path: a miss still counts as
            # an executed (and logged) command, with whatever partial
            # charges accrued before the failure.
            self._end_command()
            raise
        self.size -= 1
        self._apply_delete(page)
        self.commands_executed += 1
        if logging:
            self._append_op_log()
        return record

    # ------------------------------------------------------------------
    # batch updates
    # ------------------------------------------------------------------

    def insert_many(self, items, batch: bool = True) -> int:
        """Insert an iterable of records/keys; returns the count inserted.

        Items are pre-sorted so the insertions sweep the file left to
        right — each record still runs the full maintenance algorithm as
        its own command (and so keeps its worst-case bound), but the
        access pattern stays disk-arm friendly.

        With ``batch=True`` (the default) consecutive records that land
        on the same destination page share one *group*: the page is read
        once (:meth:`~repro.storage.pagefile.PageFile.group_read`,
        doubling as the step-1 verification read for every record in the
        group), each record is applied and maintained in order, and the
        page is written back once when the destination moves on.  The
        destination is re-verified against the in-core directory after
        every record's maintenance — using the previous destination as a
        bisect hint — so the sequence of state mutations (page contents,
        calibrator counters, warning flags, maintenance decisions) is
        *identical* to the per-record path; only the per-record
        locate/read/write charges coalesce.  ``batch=False`` is the
        escape hatch that runs the plain per-record loop.
        """
        records = sorted(
            (ensure_record(item) for item in items),
            key=lambda record: record.key,
        )
        if not batch:
            for record in records:
                self.insert(record.key, record.value)
            return len(records)
        pagefile = self.pagefile
        total = len(records)
        index = 0
        dest: Optional[int] = None
        while index < total:
            if self.size >= self._max_records:
                raise FileFullError(
                    f"file already holds N = {self.params.max_records} records"
                )
            located = pagefile.locate_in_core_hinted(records[index].key, dest)
            if located is None:
                # Empty file: start in the middle so growth is symmetric.
                located = (self.params.num_pages + 1) // 2
            dest = located
            pagefile.group_read(dest)
            try:
                while index < total:
                    record = records[index]
                    self._begin_command("insert")
                    pagefile.group_insert_kv(dest, record.key, record.value)
                    self.size += 1
                    self._apply_insert(dest)
                    self._end_command()
                    index += 1
                    if index >= total:
                        break
                    if self.size >= self._max_records:
                        # Re-checked (and raised) at the top of the outer
                        # loop, after this group's write-back.
                        break
                    next_dest = pagefile.locate_in_core_hinted(
                        records[index].key, dest
                    )
                    if next_dest != dest:
                        break
            finally:
                pagefile.group_write(dest)
        return total

    def delete_range(self, lo_key, hi_key, batch: bool = True) -> int:
        """Delete every record with ``lo_key <= key <= hi_key`` in bulk.

        Range deletion is a single pass over the affected pages —
        located directly via a bisect over the in-core minimum-key
        directory (:meth:`~repro.storage.pagefile.PageFile
        .nonempty_in_range`), never scanning pages left of the range.
        Since ``(d, D)``-density and ``BALANCE(d, D)`` impose no *lower*
        bound on local density, removing records wholesale can never
        violate them — only warning flags may need lowering afterwards
        (the bulk analogue of Figure 2's step 2).  Costs one read plus
        one write per touched page; returns the number of records
        deleted.

        ``batch=False`` instead deletes the affected keys one
        :meth:`delete` command at a time (each with its own maintenance
        and command accounting) — the escape hatch matching the
        per-record semantics exactly.
        """
        if not batch:
            victims = [
                record.key
                for page in self.pagefile.nonempty_in_range(lo_key, hi_key)
                for record in self.pagefile.page(page)
                if lo_key <= record.key <= hi_key
            ]
            for key in victims:
                self.delete(key)
            return len(victims)
        if self.pagefile.locate_in_core(lo_key) is None:
            return 0
        touched = []
        removed = 0
        for page in self.pagefile.nonempty_in_range(lo_key, hi_key):
            page_records = self.pagefile.read_page(page)
            victims = [
                record.key
                for record in page_records
                if lo_key <= record.key <= hi_key
            ]
            if not victims:
                continue
            self.pagefile.remove_keys(page, victims)
            self.calibrator.add(page, -len(victims))
            touched.append(page)
            removed += len(victims)
        self.size -= removed
        if removed:
            self._after_bulk_delete(touched)
        self.commands_executed += 1
        return removed

    def _after_bulk_delete(self, touched_pages: List[int]) -> None:
        """Hook for post-range-delete repair (flag lowering); no-op here."""

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def search(self, key) -> Optional[Record]:
        """Return the record with ``key`` or ``None``."""
        page = self.pagefile.locate(key)
        if page is None:
            return None
        return self.pagefile.get(page, key)

    def __contains__(self, key) -> bool:
        return self.search(key) is not None

    def __len__(self) -> int:
        return self.size

    def min_record(self) -> Optional[Record]:
        """The smallest-keyed record, or ``None`` on an empty file."""
        return self.pagefile.min_record()

    def max_record(self) -> Optional[Record]:
        """The largest-keyed record, or ``None`` on an empty file."""
        return self.pagefile.max_record()

    def successor(self, key) -> Optional[Record]:
        """Smallest record with key strictly greater than ``key``."""
        return self.pagefile.successor(key)

    def predecessor(self, key) -> Optional[Record]:
        """Largest record with key strictly less than ``key``."""
        return self.pagefile.predecessor(key)

    def range_scan(self, lo_key, hi_key) -> Iterator[Record]:
        """Stream records with keys in ``[lo_key, hi_key]`` in order."""
        return self.pagefile.scan_range(lo_key, hi_key)

    # ------------------------------------------------------------------
    # order statistics (powered by the in-core directory and counters)
    # ------------------------------------------------------------------

    def rank(self, key) -> int:
        """Number of stored records with key strictly less than ``key``.

        The page counts of every page left of the boundary come from the
        in-core machinery for free; only the single boundary page is
        read.  Cost: at most one page access.
        """
        boundary = self.pagefile.locate_in_core(key)
        if boundary is None:
            return 0
        total = 0
        for page in self.pagefile.nonempty_pages():
            if page >= boundary:
                break
            total += self.pagefile.page_len(page)
        for record in self.pagefile.read_page(boundary):
            if record.key < key:
                total += 1
        return total

    def count_range(self, lo_key, hi_key) -> int:
        """Number of records with ``lo_key <= key <= hi_key``.

        Cost: at most two page accesses (the two boundary pages),
        regardless of how many records lie inside — the interior comes
        from the in-core counters.
        """
        if hi_key < lo_key:
            return 0
        lo_page = self.pagefile.locate_in_core(lo_key)
        if lo_page is None:
            return 0
        hi_page = self.pagefile.locate_in_core(hi_key)
        if lo_page == hi_page:
            return sum(
                1
                for record in self.pagefile.read_page(lo_page)
                if lo_key <= record.key <= hi_key
            )
        total = sum(
            1
            for record in self.pagefile.read_page(lo_page)
            if record.key >= lo_key
        )
        total += sum(
            1
            for record in self.pagefile.read_page(hi_page)
            if record.key <= hi_key
        )
        for page in self.pagefile.nonempty_pages():
            if lo_page < page < hi_page:
                total += self.pagefile.page_len(page)
        return total

    def select(self, index: int) -> Record:
        """The record of rank ``index`` (0-based, in key order).

        Walks the in-core page counts to the owning page, then reads
        that one page.  Cost: one page access.
        """
        if index < 0 or index >= self.size:
            raise IndexError(
                f"rank {index} out of range [0, {self.size})"
            )
        remaining = index
        for page in self.pagefile.nonempty_pages():
            count = self.pagefile.page_len(page)
            if remaining < count:
                return self.pagefile.read_page(page)[remaining]
            remaining -= count
        raise AssertionError("size and page counts disagree")

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def compact(self) -> int:
        """Redistribute every record uniformly over all ``M`` pages.

        Deletions leave the file sparse in places, which lengthens
        stream scans (more pages per record).  ``compact`` is the bulk
        remedy — the same uniform redistribution CONTROL 1 applies
        locally and Theorem 5.5 assumes initially — at a cost of one
        read plus one write per page.  Warning state is cleared: a
        uniform file at legal cardinality satisfies ``p(v) <= d`` for
        every node, far below every warning threshold.

        Returns the number of pages rewritten.
        """
        span = self.pagefile.redistribute(1, self.params.num_pages)
        tree = self.calibrator
        for page in range(1, self.params.num_pages + 1):
            leaf = tree.leaf_of_page[page]
            tree.count[leaf] = self.pagefile.page_len(page)
        for node in sorted(tree.iter_nodes(), key=lambda n: -tree.depth[n]):
            if not tree.is_leaf(node):
                tree.count[node] = (
                    tree.count[tree.left[node]] + tree.count[tree.right[node]]
                )
        if hasattr(self, "destinations"):
            for node in list(tree.flagged_nodes()):
                tree.set_flag(node, False)
            self.destinations.clear()
            self.sources.clear()
        return span

    def scan_count(self, start_key, count: int) -> List[Record]:
        """Return up to ``count`` records with key >= ``start_key``."""
        return self.pagefile.scan_count(start_key, count)

    def iter_records(self) -> Iterator[Record]:
        """Yield every record in key order (charges reads per page)."""
        return self.pagefile.iter_all()

    def occupancies(self) -> List[int]:
        """Records per page, as a list of length M."""
        return self.pagefile.occupancies()

    @property
    def stats(self):
        return self.disk.stats

    def enable_operation_log(self) -> OperationLog:
        """Start recording per-command cost; returns the live log."""
        self.operation_log = OperationLog()
        return self.operation_log

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Assert every end-of-command invariant; raises on violation."""
        from .invariants import check_engine

        check_engine(self)
