"""EXTENSION (not in the paper): an adaptive shift-budget controller.

CONTROL 2 performs exactly ``J`` SELECT/SHIFT iterations after every
command while any warning is raised.  Because warnings persist until a
node's density falls all the way to ``g(v, 1/3)``, the commands *after*
a surge keep paying the full budget while the file drains back to
sparse — even though nothing is anywhere near violating ``BALANCE``.

:class:`AdaptiveControl2Engine` spends a small *base* budget per command
and escalates to the full paper budget only when some warning node is in
the **danger zone**: the upper half of the corridor between its warning
threshold ``g(v, 2/3)`` and its hard limit ``g(v, 1)``, i.e.

    p(v)  >=  ( g(v, 2/3) + g(v, 1) ) / 2,

evaluated, like every other threshold in this library, in exact integer
arithmetic.  The worst-case per-command cost keeps the paper's
``O(log^2 M / (D - d))`` ceiling (escalation never exceeds ``J``), while
calm and post-surge traffic pays close to the base budget.  Benchmark
EXP-A6 measures the trade.
"""

from __future__ import annotations

from typing import Optional

from ..storage.cost import CostModel, PAGE_ACCESS_MODEL
from ..storage.disk import SimulatedDisk
from .control2 import Control2Engine
from .errors import ConfigurationError
from .params import DensityParams
from .trace import STEP_1, STEP_2, STEP_3, STEP_4A, STEP_4B, STEP_4C


class AdaptiveControl2Engine(Control2Engine):
    """CONTROL 2 with a two-level (base / escalated) shift budget."""

    algorithm_name = "CONTROL 2 (adaptive J)"

    def __init__(
        self,
        params: DensityParams,
        base_budget: int = 2,
        disk: Optional[SimulatedDisk] = None,
        model: CostModel = PAGE_ACCESS_MODEL,
        store=None,
    ):
        super().__init__(params, disk=disk, model=model, store=store)
        if base_budget < 1:
            raise ConfigurationError("base_budget must be at least 1")
        self.base_budget = min(base_budget, params.shift_budget)
        #: Commands that ran with the escalated (full) budget.
        self.escalations = 0

    # ------------------------------------------------------------------
    # the danger-zone predicate
    # ------------------------------------------------------------------

    def _in_danger_zone(self, node: int) -> bool:
        """Exact test of ``p(v) >= (g(v, 2/3) + g(v, 1)) / 2``.

        With ``L = ceil(log2 M)``, multiplying the paper's ``g`` formula
        through by ``6 L`` keeps everything integral: the test becomes

            6 L N_v  >=  (6 L d + (6 depth - 1) (D - d)) M_v.
        """
        tree = self.calibrator
        params = self.params
        count = tree.count[node]
        pages = tree.pages_in(node)
        depth = tree.depth[node]
        lhs = 6 * params.log_m * count
        rhs = (
            6 * params.log_m * params.d
            + (6 * depth - 1) * params.slack
        ) * pages
        return lhs >= rhs

    def _any_warning_in_danger(self) -> bool:
        return any(
            self._in_danger_zone(node)
            for node in self.calibrator.flagged_nodes()
        )

    # ------------------------------------------------------------------
    # the adaptive mainline (steps 2-4)
    # ------------------------------------------------------------------

    def _run_steps_2_to_4(self, page: int) -> None:
        tree = self.calibrator
        path = tree.path_from_leaf(page)
        self._notify(STEP_1)

        self._lower_flags_if_sparse(path)
        self._notify(STEP_2)

        for node in path:
            if tree.parent[node] < 0:
                continue
            if not tree.flag[node] and self._density_at_least(node, 2):
                self._activate(node)
        self._notify(STEP_3)

        budget = self.base_budget
        if self._any_warning_in_danger():
            budget = self.params.shift_budget
            self.escalations += 1
        for _ in range(budget):
            target = self._select(page)
            self._notify(STEP_4A)
            if target is None:
                break
            changed = self._shift(target)
            self._notify(STEP_4B)
            self._lower_flags_if_sparse(changed)
            self._notify(STEP_4C)

    # Control2Engine binds its after-hooks to its own mainline function
    # (not through dynamic dispatch) and fuses the counter bump into
    # the step-3 scan with a full-budget step 4, so an override of the
    # mainline must re-bind the hooks and restore the unfused pair
    # (the adaptive budget choice lives in the mainline).
    _after_insert = _run_steps_2_to_4
    _after_delete = _run_steps_2_to_4

    def _apply_insert(self, page: int) -> None:
        self.calibrator.add(page, 1)
        self._run_steps_2_to_4(page)

    def _apply_delete(self, page: int) -> None:
        self.calibrator.add(page, -1)
        self._run_steps_2_to_4(page)
