"""Structural invariant checkers for dense sequential files.

Four invariants from Chapter 1 and Section 3 of the paper are asserted:

1. **Sequential order** — ``ADD(R1) <= ADD(R2)`` whenever
   ``KEY(R1) < KEY(R2)`` (condition iii of ``(d, D)``-density).
2. **(d, D)-density** — at most ``N = d*M`` records in total and at most
   ``D`` on any page (conditions i and ii).
3. **BALANCE(d, D)** — ``p(v) <= g(v, 1)`` at every calibrator node,
   the stronger condition CONTROL 1/2 actually maintain.
4. **Counter consistency** — every ``N_v`` equals the number of records
   physically stored in ``RANGE(v)``, and the page directory matches the
   pages.

These checks read state directly (no page-access charges) and are meant
to run at end-of-command moments, which is exactly where the paper's
Theorem 5.5 makes its guarantee.
"""

from __future__ import annotations

from typing import List

from .errors import InvariantViolationError


def check_sequential_order(pagefile) -> None:
    """Assert global key order across pages and within each page."""
    previous_key = None
    previous_page = None
    for page_number, records in pagefile.snapshot():
        for record in records:
            if previous_key is not None and record.key <= previous_key:
                raise InvariantViolationError(
                    "sequential order violated: key "
                    f"{record.key!r} on page {page_number} follows "
                    f"{previous_key!r} on page {previous_page}"
                )
            previous_key = record.key
            previous_page = page_number


def check_density(pagefile, params) -> None:
    """Assert conditions (i) and (ii) of ``(d, D)``-density."""
    total = 0
    for page_number in range(1, params.num_pages + 1):
        count = pagefile.page_len(page_number)
        total += count
        if count > params.D:
            raise InvariantViolationError(
                f"page {page_number} holds {count} records, exceeding D="
                f"{params.D}"
            )
    if total > params.max_records:
        raise InvariantViolationError(
            f"file holds {total} records, exceeding N = d*M = "
            f"{params.max_records}"
        )


def check_balance(calibrator, params) -> List[int]:
    """Assert ``BALANCE(d, D)``; returns the list of violating nodes.

    Raises on the first violation; the return value (always ``[]`` on
    success) keeps the signature convenient for non-raising probes via
    :func:`balance_violations`.
    """
    violations = balance_violations(calibrator, params)
    if violations:
        node = violations[0]
        lo, hi, depth, count = calibrator.describe(node)
        raise InvariantViolationError(
            f"BALANCE(d,D) violated at node {node} "
            f"(range [{lo},{hi}], depth {depth}): N_v={count}, M_v={hi - lo + 1}"
        )
    return violations


def balance_violations(calibrator, params) -> List[int]:
    """Return every node with ``p(v) > g(v, 1)`` (non-raising probe)."""
    violating = []
    for node in calibrator.iter_nodes():
        if params.density_exceeds(
            calibrator.count[node],
            calibrator.pages_in(node),
            calibrator.depth[node],
            3,
        ):
            violating.append(node)
    return violating


def check_counters(pagefile, calibrator) -> None:
    """Assert calibrator counters match the physical page occupancies."""
    for node in calibrator.iter_nodes():
        expected = sum(
            pagefile.page_len(page)
            for page in range(calibrator.lo[node], calibrator.hi[node] + 1)
        )
        if calibrator.count[node] != expected:
            lo, hi, depth, count = calibrator.describe(node)
            raise InvariantViolationError(
                f"rank counter mismatch at node {node} (range [{lo},{hi}]): "
                f"N_v={count} but pages hold {expected}"
            )


def check_directory(pagefile) -> None:
    """Assert the in-core non-empty-page directory matches the pages."""
    expected = [
        page
        for page in range(1, pagefile.num_pages + 1)
        if pagefile.page_len(page) > 0
    ]
    if pagefile.nonempty_pages() != expected:
        raise InvariantViolationError(
            "page directory out of sync with physical pages"
        )


def check_warning_flags(engine) -> None:
    """Assert Fact 5.1 at a flag-stable moment for a CONTROL 2 engine.

    (a) ``p(x) <= g(x, 1/3)`` implies non-warning;
    (b) ``p(x) >= g(x, 2/3)`` at a non-root node implies warning.
    Also asserts every warning node carries a DEST pointer inside its
    father's range.
    """
    tree = engine.calibrator
    params = engine.params
    for node in tree.iter_nodes():
        count = tree.count[node]
        pages = tree.pages_in(node)
        depth = tree.depth[node]
        flagged = tree.flag[node]
        if params.density_at_most(count, pages, depth, 1) and flagged:
            raise InvariantViolationError(
                f"Fact 5.1(a) violated: node {node} is warning with "
                "p(x) <= g(x, 1/3)"
            )
        if (
            tree.parent[node] >= 0
            and params.density_at_least(count, pages, depth, 2)
            and not flagged
        ):
            raise InvariantViolationError(
                f"Fact 5.1(b) violated: node {node} has p(x) >= g(x, 2/3) "
                "but is not warning"
            )
        if flagged:
            dest = engine.destinations.get(node)
            father = tree.parent[node]
            if dest is None:
                raise InvariantViolationError(
                    f"warning node {node} has no DEST pointer"
                )
            if not (tree.lo[father] <= dest <= tree.hi[father]):
                raise InvariantViolationError(
                    f"DEST({node}) = {dest} outside RANGE(f_v) = "
                    f"[{tree.lo[father]}, {tree.hi[father]}]"
                )


def check_engine(engine) -> None:
    """Run every invariant applicable to ``engine``."""
    check_sequential_order(engine.pagefile)
    check_density(engine.pagefile, engine.params)
    check_counters(engine.pagefile, engine.calibrator)
    check_directory(engine.pagefile)
    check_balance(engine.calibrator, engine.params)
    if hasattr(engine, "destinations"):
        check_warning_flags(engine)
    if engine.size != engine.calibrator.count[engine.calibrator.root]:
        raise InvariantViolationError(
            f"engine size {engine.size} disagrees with the root counter "
            f"{engine.calibrator.count[engine.calibrator.root]}"
        )
