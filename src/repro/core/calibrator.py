"""The calibrator: a binary tree of page ranges with rank counters.

Section 3 of the paper defines the calibrator as a binary tree whose
root spans pages ``[1, M]``, whose internal nodes split their range at
``floor((A- + A+) / 2)``, and whose leaves span a single page.  Each
node ``v`` stores a rank counter ``N_v`` = number of records whose page
address lies in ``RANGE(v)``.

This implementation stores the tree in parallel arrays indexed by a
dense integer node id (0 is the root).  Besides the counters it
maintains, per node, a *flag* bit (CONTROL 2's ``WARNING`` state) and a
subtree count of flagged nodes, which makes the paper's ``SELECT``
queries ("lowest ancestor with a flagged proper descendant", "deepest
flagged descendant") cheap without scanning the whole tree.

The calibrator lives in core memory; none of its operations charge page
accesses.  That matches the paper, which treats the calibrator walk as
negligible next to the data-page accesses it meters.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from .errors import ConfigurationError, UsageError


class CalibratorTree:
    """Binary range tree over pages ``1..M`` with rank counters."""

    def __init__(self, num_pages: int):
        if num_pages < 1:
            raise ConfigurationError("num_pages must be >= 1")
        self.num_pages = num_pages
        self.lo: List[int] = []
        self.hi: List[int] = []
        self.depth: List[int] = []
        self.parent: List[int] = []
        self.left: List[int] = []
        self.right: List[int] = []
        self.count: List[int] = []
        self.flag: List[bool] = []
        self.flags_below: List[int] = []  # flagged nodes in subtree, incl. self
        #: The currently flagged node ids as a set.  CONTROL 2 keeps at
        #: most a handful of warnings alive at a time, so SELECT-style
        #: queries scan this set instead of walking the tree.
        self.flagged_set: set = set()
        self.leaf_of_page: List[int] = [-1] * (num_pages + 1)
        self._build(1, num_pages, parent=-1, depth=0)
        #: Leaf-to-root path per page, leaf first, as immutable tuples.
        #: The tree's shape never changes after construction, so the
        #: paths are precomputed once; ``path_from_leaf`` and ``add``
        #: (both on the per-command hot path) read them instead of
        #: chasing ``parent`` pointers on every call.
        self.paths: List[Tuple[int, ...]] = [()] * (num_pages + 1)
        for page in range(1, num_pages + 1):
            node = self.leaf_of_page[page]
            path = []
            while node >= 0:
                path.append(node)
                node = self.parent[node]
            self.paths[page] = tuple(path)

    def _build(self, lo: int, hi: int, parent: int, depth: int) -> int:
        node = len(self.lo)
        self.lo.append(lo)
        self.hi.append(hi)
        self.depth.append(depth)
        self.parent.append(parent)
        self.left.append(-1)
        self.right.append(-1)
        self.count.append(0)
        self.flag.append(False)
        self.flags_below.append(0)
        if lo == hi:
            self.leaf_of_page[lo] = node
            return node
        mid = (lo + hi) // 2
        self.left[node] = self._build(lo, mid, node, depth + 1)
        self.right[node] = self._build(mid + 1, hi, node, depth + 1)
        return node

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------

    @property
    def root(self) -> int:
        return 0

    def __len__(self) -> int:
        return len(self.lo)

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` spans a single page."""
        return self.left[node] < 0

    def is_root(self, node: int) -> bool:
        """Whether ``node`` is the root (depth 0)."""
        return self.parent[node] < 0

    def is_right_child(self, node: int) -> bool:
        """``DIR(v)`` of the paper: True when ``v`` is a right son."""
        parent = self.parent[node]
        if parent < 0:
            raise UsageError("the root has no direction")
        return self.right[parent] == node

    def pages_in(self, node: int) -> int:
        """``M_v``: the number of pages in the node's range."""
        return self.hi[node] - self.lo[node] + 1

    def contains_page(self, node: int, page: int) -> bool:
        """Whether ``page`` lies in ``RANGE(node)``."""
        return self.lo[node] <= page <= self.hi[node]

    def iter_nodes(self) -> Iterator[int]:
        """Iterate every node id (preorder of construction)."""
        return iter(range(len(self.lo)))

    def path_from_leaf(self, page: int) -> List[int]:
        """Node ids from the page's leaf up to (and including) the root."""
        return list(self.paths[page])

    def nodes_separating(self, dest_page: int, source_page: int) -> List[int]:
        """The paper's ``UP`` set for a SHIFT.

        Returns every node ``x`` with ``dest_page in RANGE(x)`` but
        ``source_page not in RANGE(x)``: the nodes on the leaf-to-root
        path of ``dest_page`` strictly below the least common ancestor
        of the two pages, ordered leaf-first.
        """
        # Hot inside SHIFT: the range test is inlined (same predicate as
        # contains_page) so the walk costs no method calls per level.
        nodes = []
        lo = self.lo
        hi = self.hi
        parent = self.parent
        node = self.leaf_of_page[dest_page]
        while node >= 0 and not lo[node] <= source_page <= hi[node]:
            nodes.append(node)
            node = parent[node]
        return nodes

    # ------------------------------------------------------------------
    # rank counters
    # ------------------------------------------------------------------

    def add(self, page: int, delta: int) -> None:
        """Add ``delta`` records at ``page``.

        Updates every counter on the leaf-to-root path (the counters the
        paper says "require change"), leaf first.
        """
        count = self.count
        if delta >= 0:
            for node in self.paths[page]:
                count[node] += delta
            return
        for node in self.paths[page]:
            updated = count[node] + delta
            if updated < 0:
                raise UsageError(f"negative rank counter at node {node}")
            count[node] = updated

    def transfer(
        self,
        source_page: int,
        dest_page: int,
        moved: int,
        dest_nodes: Optional[List[int]] = None,
    ) -> List[int]:
        """Account for ``moved`` records moving between two pages.

        Returns the node ids whose counters changed (those on exactly one
        of the two leaf-to-root paths).  ``dest_nodes`` lets a caller
        that already computed ``nodes_separating(dest_page, source_page)``
        (SHIFT does, for its guards) pass it in instead of walking the
        tree a second time.
        """
        count = self.count
        if dest_nodes is None:
            dest_nodes = self.nodes_separating(dest_page, source_page)
        changed = list(dest_nodes)
        for node in dest_nodes:
            count[node] += moved
        for node in self.nodes_separating(source_page, dest_page):
            updated = count[node] - moved
            if updated < 0:
                raise UsageError(f"negative rank counter at node {node}")
            count[node] = updated
            changed.append(node)
        return changed

    def leaf_count(self, page: int) -> int:
        """Rank counter of the leaf covering ``page``."""
        return self.count[self.leaf_of_page[page]]

    # ------------------------------------------------------------------
    # flags (CONTROL 2 warning states)
    # ------------------------------------------------------------------

    def set_flag(self, node: int, value: bool) -> None:
        """Raise or lower the flag bit, maintaining subtree flag counts."""
        if self.flag[node] == value:
            return
        self.flag[node] = value
        if value:
            self.flagged_set.add(node)
            delta = 1
        else:
            self.flagged_set.discard(node)
            delta = -1
        cursor = node
        while cursor >= 0:
            self.flags_below[cursor] += delta
            cursor = self.parent[cursor]

    def clear_flags(self) -> None:
        """Lower every flag and zero the subtree flag counts."""
        for node in range(len(self.flag)):
            self.flag[node] = False
            self.flags_below[node] = 0
        self.flagged_set.clear()

    def any_flagged(self) -> bool:
        """Whether any node currently holds a raised flag."""
        return self.flags_below[self.root] > 0

    def flagged_nodes(self) -> List[int]:
        """List of node ids currently flagged, in id order."""
        return sorted(self.flagged_set)

    def lowest_ancestor_with_flagged_proper_descendant(
        self, page: int
    ) -> Optional[int]:
        """SELECT step 1: walk up from the page's leaf.

        Returns the lowest ancestor ``alpha`` of the leaf such that some
        *proper* descendant of ``alpha`` is flagged, or ``None`` when no
        flags are raised anywhere on the path (equivalently: anywhere,
        once the root is reached).
        """
        node = self.leaf_of_page[page]
        while node >= 0:
            proper = self.flags_below[node] - (1 if self.flag[node] else 0)
            if proper > 0:
                return node
            node = self.parent[node]
        return None

    def deepest_flagged_descendant(self, node: int) -> Optional[int]:
        """SELECT step 2: the deepest flagged node in ``node``'s subtree.

        Ties on depth break toward the smaller page range start (the
        paper's smallest-``A-`` rule).  The scan runs over the current
        flagged set — CONTROL 2 holds only a handful of warnings at a
        time — rather than traversing the subtree; at equal depth the
        ranges of two nodes are disjoint, so (depth desc, lo asc) picks
        the same unique winner the left-first tree walk used to find.
        """
        lo = self.lo
        hi = self.hi
        depth = self.depth
        node_lo = lo[node]
        node_hi = hi[node]
        best = -1
        best_depth = -1
        best_lo = 0
        for candidate in self.flagged_set:
            candidate_lo = lo[candidate]
            if candidate_lo < node_lo or hi[candidate] > node_hi:
                continue  # not in the subtree
            candidate_depth = depth[candidate]
            if candidate_depth > best_depth or (
                candidate_depth == best_depth and candidate_lo < best_lo
            ):
                best = candidate
                best_depth = candidate_depth
                best_lo = candidate_lo
        return best if best >= 0 else None

    # ------------------------------------------------------------------
    # debugging helpers
    # ------------------------------------------------------------------

    def describe(self, node: int) -> Tuple[int, int, int, int]:
        """Return ``(lo, hi, depth, count)`` for one node."""
        return (self.lo[node], self.hi[node], self.depth[node], self.count[node])
