"""CONTROL 1: the amortized baseline algorithm of Section 3.

After the shared step 1 (insert/delete plus counter updates), CONTROL 1
checks whether any calibrator node now violates ``BALANCE(d, D)``
(``p(v) > g(v, 1)``).  If so, it takes the *highest* violating node
``v`` and redistributes all records under ``v``'s father evenly, at a
cost of ``O(M_{f_v})`` page accesses.  Itai, Konheim and Rodeh showed
the amortized cost of this style of rebalance is
``O(log^2 M / (D - d))``; its worst case, however, is ``O(M)`` — the
spike CONTROL 2 exists to remove, and the contrast our worst-case
benchmark (EXP-W1) measures.
"""

from __future__ import annotations

from typing import Optional

from .engine import BaseEngine


class Control1Engine(BaseEngine):
    """The paper's amortized algorithm, CONTROL 1."""

    algorithm_name = "CONTROL 1"

    #: Number of step-B rebalances performed (diagnostics).
    rebalances = 0

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.rebalances = 0
        self.largest_rebalance = 0

    def _highest_violator(self, page: int) -> Optional[int]:
        """The least-depth node on the page's path with ``p(v) > g(v, 1)``.

        Only nodes on the affected leaf-to-root path can have changed, so
        only they can newly violate.  ``path_from_leaf`` is leaf-first;
        we scan it root-first and return the first violation.
        """
        tree = self.calibrator
        for node in reversed(tree.path_from_leaf(page)):
            if self.params.density_exceeds(
                tree.count[node], tree.pages_in(node), tree.depth[node], 3
            ):
                return node
        return None

    def _recount_range(self, lo_page: int, hi_page: int) -> None:
        """Rebuild leaf counters for a page range after a redistribution.

        The redistribution keeps all records inside the range, so every
        ancestor counter is unchanged; only the counters of nodes fully
        inside the range need recomputing.  We reset the affected leaf
        counters from the page file and rebuild internal counts bottom-up
        for the nodes whose range lies within ``[lo_page, hi_page]``.
        """
        tree = self.calibrator
        touched = set()
        for page in range(lo_page, hi_page + 1):
            leaf = tree.leaf_of_page[page]
            tree.count[leaf] = self.pagefile.page_len(page)
            node = tree.parent[leaf]
            while node >= 0 and lo_page <= tree.lo[node] and tree.hi[node] <= hi_page:
                touched.add(node)
                node = tree.parent[node]
        # Rebuild deepest-first so children are final before parents.
        for node in sorted(touched, key=lambda n: -tree.depth[n]):
            tree.count[node] = (
                tree.count[tree.left[node]] + tree.count[tree.right[node]]
            )

    def _rebalance(self, violator: int) -> None:
        tree = self.calibrator
        father = tree.parent[violator]
        if father < 0:
            # p(root) > g(root, 1) = d means the cardinality cap was
            # breached, which BaseEngine.insert prevents up front.
            raise AssertionError("root violation implies size > d*M")
        lo_page, hi_page = tree.lo[father], tree.hi[father]
        # Redistribution only touches [lo_page, hi_page], so the moved-
        # record diff needs just that slice, not all M occupancies.
        span_pages = range(lo_page, hi_page + 1)
        before = [self.pagefile.page_len(p) for p in span_pages]
        span = self.pagefile.redistribute(lo_page, hi_page)
        after = [self.pagefile.page_len(p) for p in span_pages]
        moved = sum(
            abs(after[index] - before[index]) for index in range(len(after))
        ) // 2
        self.records_moved_total += moved
        self._recount_range(lo_page, hi_page)
        self.rebalances += 1
        self.largest_rebalance = max(self.largest_rebalance, span)

    def _after_insert(self, page: int) -> None:
        violator = self._highest_violator(page)
        if violator is not None:
            self._rebalance(violator)

    def _after_delete(self, page: int) -> None:
        # Deletions only lower densities; BALANCE(d, D) has no lower
        # bound, so there is nothing to repair.
        return
