"""Density parameters and the exact-arithmetic ``g(v, r)`` thresholds.

Section 3 of the paper defines, for a calibrator node ``v`` at depth
``Depth(v)`` (the root has depth 0) and a real ``r``::

    g(v, r) = d + (Depth(v) + r - 1) / ceil(log2 M) * (D - d)
    p(v)    = N_v / M_v

and the file is ``BALANCE(d, D)`` when every node has ``p(v) <= g(v, 1)``.
CONTROL 2 only ever compares ``p(v)`` against ``g(v, r)`` for
``r in {0, 1/3, 2/3, 1}``.  Writing ``r = j/3`` with integer
``j in {0, 1, 2, 3}`` and ``L = ceil(log2 M)``, the comparison
``p(v) >= g(v, j/3)`` is equivalent to the all-integer test::

    3 * L * N_v  >=  (3 * L * d + (3 * Depth(v) + j - 3) * (D - d)) * M_v

:class:`DensityParams` exposes exactly these integer predicates, so the
control path contains no floating point at all.  That is what makes the
Figure 4 trace reproduction bit-exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from .errors import ConfigurationError

#: Safety coefficient for the default ``J``.  The paper proves that
#: ``J = 90 * ceil(log^2 M) / (D - d)`` is adequate and remarks that a
#: sharper proof reduces the constant by at least one order of magnitude
#: ("typically J should be about 18"); benchmarks/test_j_sensitivity.py
#: measures where the practical threshold falls.
DEFAULT_J_COEFFICIENT = 9


def ceil_log2(m: int) -> int:
    """Return ``ceil(log2 m)`` for ``m >= 1`` (0 for ``m == 1``)."""
    if m < 1:
        raise ConfigurationError("m must be >= 1")
    return max(0, (m - 1).bit_length())


def recommended_j(num_pages: int, slack: int, coefficient: int = DEFAULT_J_COEFFICIENT) -> int:
    """The default shift budget ``J ~ coefficient * log^2 M / (D - d)``."""
    log_m = max(1, ceil_log2(num_pages))
    return max(1, math.ceil(coefficient * log_m * log_m / slack))


@dataclass(frozen=True)
class DensityParams:
    """Immutable ``(d, D)``-density configuration for an ``M``-page file.

    Parameters
    ----------
    num_pages:
        ``M``, the number of consecutive pages.
    d:
        Average-density bound: the file may hold at most ``N = d * M``
        records.
    D:
        Hard per-page record capacity.
    j:
        CONTROL 2's per-command shift budget.  ``None`` selects
        :func:`recommended_j`.
    j_coefficient:
        Coefficient used when ``j`` is ``None``.
    """

    num_pages: int
    d: int
    D: int
    j: Optional[int] = None
    j_coefficient: int = DEFAULT_J_COEFFICIENT
    log_m: int = field(init=False)

    def __post_init__(self):
        if self.num_pages < 2:
            raise ConfigurationError("num_pages (M) must be at least 2")
        if self.d < 1:
            raise ConfigurationError("d must be at least 1")
        if self.D <= self.d:
            raise ConfigurationError("D must exceed d")
        if self.j is not None and self.j < 1:
            raise ConfigurationError("J must be at least 1")
        object.__setattr__(self, "log_m", ceil_log2(self.num_pages))

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    @property
    def slack(self) -> int:
        """``D - d``, the density slack that pays for maintenance."""
        return self.D - self.d

    @property
    def max_records(self) -> int:
        """``N = d * M``, the cardinality cap of Theorem 5.5."""
        return self.d * self.num_pages

    @property
    def shift_budget(self) -> int:
        """The effective ``J`` (explicit or recommended)."""
        if self.j is not None:
            return self.j
        return recommended_j(self.num_pages, self.slack, self.j_coefficient)

    @property
    def satisfies_slack_condition(self) -> bool:
        """Whether ``D - d > 3 * ceil(log2 M)`` (equation 5.1) holds."""
        return self.slack > 3 * self.log_m

    @property
    def macro_block_factor(self) -> int:
        """Least ``K`` with ``K * (D - d) > 3 * ceil(log2 M)`` (eq. 5.3)."""
        return (3 * self.log_m) // self.slack + 1

    # ------------------------------------------------------------------
    # exact threshold predicates: r = thirds / 3
    # ------------------------------------------------------------------

    def _coefficient(self, depth: int, thirds: int) -> int:
        """``3 L g(v, thirds/3)`` as an exact integer, times nothing else.

        Returns ``3*L*d + (3*depth + thirds - 3) * (D - d)``, so that
        ``p(v) >= g(v, thirds/3)`` iff ``3*L*N_v >= coefficient * M_v``.
        """
        return 3 * self.log_m * self.d + (3 * depth + thirds - 3) * self.slack

    def density_at_least(self, count: int, pages: int, depth: int, thirds: int) -> bool:
        """Exact test of ``p(v) >= g(v, thirds/3)``."""
        return 3 * self.log_m * count >= self._coefficient(depth, thirds) * pages

    def density_at_most(self, count: int, pages: int, depth: int, thirds: int) -> bool:
        """Exact test of ``p(v) <= g(v, thirds/3)``."""
        return 3 * self.log_m * count <= self._coefficient(depth, thirds) * pages

    def density_exceeds(self, count: int, pages: int, depth: int, thirds: int) -> bool:
        """Exact test of ``p(v) > g(v, thirds/3)`` (BALANCE violation at thirds=3)."""
        return 3 * self.log_m * count > self._coefficient(depth, thirds) * pages

    def threshold_count(self, pages: int, depth: int, thirds: int) -> int:
        """Smallest integer ``N`` with ``N / pages >= g(depth, thirds/3)``.

        Used by SHIFT to compute, without iterating record by record, how
        many records may move into a node before ``p(x) >= g(x, 0)``
        first becomes true.  Never negative.
        """
        numerator = self._coefficient(depth, thirds) * pages
        denominator = 3 * self.log_m
        return max(0, -(-numerator // denominator))

    def g_value(self, depth: int, thirds: int) -> float:
        """``g`` as a float, for reporting only (never for control flow)."""
        return self.d + (depth + thirds / 3.0 - 1.0) * self.slack / self.log_m

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DensityParams(M={self.num_pages}, d={self.d}, D={self.D}, "
            f"J={self.shift_budget}, logM={self.log_m})"
        )
