"""A sequential file with overflow chaining (the Wiederhold heuristic).

The primary area is a sequential file of ``M`` pages loaded at some fill
factor.  When an insertion lands on a full primary page, the new record
goes to an *overflow page* chained off that primary page; overflow pages
are allocated at the far end of the disk (pages ``M+1, M+2, ...``), so
every chained access pays a long seek.  This is the organization the
paper's introduction declares "unsuitable ... in many dynamic
environments": a burst of insertions into a narrow key range makes one
chain arbitrarily long, and stream retrievals through that range lose
the sequential-access advantage entirely.  Benchmark EXP-W3 measures
exactly that degradation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..core.errors import (
    ConfigurationError,
    DuplicateKeyError,
    RecordNotFoundError,
    UsageError,
)
from ..records import Record, ensure_record
from ..storage.cost import CostModel, PAGE_ACCESS_MODEL
from ..storage.disk import SimulatedDisk
from ..storage.page import Page


class OverflowChainFile:
    """Primary sequential area plus per-page overflow chains."""

    algorithm_name = "overflow-chained sequential file"

    def __init__(
        self,
        num_primary_pages: int,
        capacity: int,
        model: CostModel = PAGE_ACCESS_MODEL,
    ):
        if num_primary_pages < 1 or capacity < 1:
            raise ConfigurationError("need at least one page and positive capacity")
        self.num_primary_pages = num_primary_pages
        self.capacity = capacity
        self.disk = SimulatedDisk(num_primary_pages, model)
        self._primary: List[Page] = [Page() for _ in range(num_primary_pages + 1)]
        # chains[primary_page] = list of overflow page numbers, in
        # allocation order; _overflow[page_number] = its Page.
        self.chains: Dict[int, List[int]] = {}
        self._overflow: Dict[int, Page] = {}
        self.size = 0

    @property
    def stats(self):
        return self.disk.stats

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def bulk_load(self, records) -> None:
        """Spread sorted records evenly over the primary area."""
        if self.size:
            raise UsageError("bulk_load requires an empty file")
        loaded = sorted(
            (ensure_record(item) for item in records),
            key=lambda record: record.key,
        )
        total = len(loaded)
        pages = self.num_primary_pages
        cursor = 0
        for page in range(1, pages + 1):
            upto = (page * total) // pages
            chunk = loaded[cursor:upto]
            cursor = upto
            if len(chunk) > self.capacity:
                raise UsageError(
                    "bulk_load fill exceeds page capacity; use more pages"
                )
            if chunk:
                self._primary[page].extend_high(chunk)
                self.disk.write(page)
        self.size = total

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------

    def _home_page(self, key) -> int:
        """Primary page whose key interval owns ``key`` (free directory).

        The primary area's key boundaries are static after bulk load (a
        record's home never moves), so the directory of primary minimum
        keys is in-core, as it would be in a real ISAM-style file.
        """
        lo, hi = 1, self.num_primary_pages
        best = 1
        while lo <= hi:
            mid = (lo + hi) // 2
            page = self._primary[mid]
            if page.is_empty:
                # Probe outward for a non-empty neighbour deterministically.
                left = mid - 1
                while left >= lo and self._primary[left].is_empty:
                    left -= 1
                if left < lo:
                    lo = mid + 1
                    continue
                mid = left
                page = self._primary[mid]
            if page.min_key <= key:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def _allocate_overflow_page(self, home: int) -> int:
        page_number = self.disk.extend(1)
        self._overflow[page_number] = Page()
        self.chains.setdefault(home, []).append(page_number)
        return page_number

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert(self, key, value=None) -> None:
        """Insert into the home page, spilling to its overflow chain when full."""
        record = Record(key, value)
        home = self._home_page(key)
        primary = self._primary[home]
        self.disk.read(home)
        if self._find_in_chain(home, key, charge=False) is not None or (
            primary.contains(key)
        ):
            raise DuplicateKeyError(key)
        if len(primary) < self.capacity:
            primary.insert(record)
            self.disk.write(home)
        else:
            chain = self.chains.get(home, [])
            if chain:
                tail = chain[-1]
                self.disk.read(tail)
                if len(self._overflow[tail]) < self.capacity:
                    self._overflow[tail].insert(record)
                    self.disk.write(tail)
                else:
                    fresh = self._allocate_overflow_page(home)
                    self._overflow[fresh].insert(record)
                    self.disk.write(fresh)
            else:
                fresh = self._allocate_overflow_page(home)
                self._overflow[fresh].insert(record)
                self.disk.write(fresh)
        self.size += 1

    def _find_in_chain(self, home: int, key, charge: bool = True) -> Optional[int]:
        """Return the overflow page holding ``key``, scanning the chain."""
        for page_number in self.chains.get(home, []):
            if charge:
                self.disk.read(page_number)
            if self._overflow[page_number].contains(key):
                return page_number
        return None

    def delete(self, key) -> Record:
        """Delete ``key`` from the primary page or its chain."""
        home = self._home_page(key)
        self.disk.read(home)
        if self._primary[home].contains(key):
            record = self._primary[home].remove(key)
            self.disk.write(home)
            self.size -= 1
            return record
        page_number = self._find_in_chain(home, key)
        if page_number is None:
            raise RecordNotFoundError(key)
        record = self._overflow[page_number].remove(key)
        self.disk.write(page_number)
        self.size -= 1
        return record

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def search(self, key) -> Optional[Record]:
        """Return the record with ``key`` (primary then chain) or ``None``."""
        home = self._home_page(key)
        self.disk.read(home)
        found = self._primary[home].get(key)
        if found is not None:
            return found
        page_number = self._find_in_chain(home, key)
        if page_number is None:
            return None
        return self._overflow[page_number].get(key)

    def __contains__(self, key) -> bool:
        return self.search(key) is not None

    def range_scan(self, lo_key, hi_key) -> Iterator[Record]:
        """Stream the range in key order, chains included.

        For every primary page intersecting the range, the whole chain
        must be read and merged before any record can be emitted in
        order — each chained page sits at the end of the disk, so the
        arm ping-pongs between the primary area and the overflow area.
        """
        start = self._home_page(lo_key)
        for home in range(start, self.num_primary_pages + 1):
            primary = self._primary[home]
            chain = self.chains.get(home, [])
            if primary.is_empty and not chain:
                continue
            if not primary.is_empty and primary.min_key > hi_key:
                break
            self.disk.read(home)
            gathered = primary.records()
            for page_number in chain:
                self.disk.read(page_number)
                gathered.extend(self._overflow[page_number].records())
            gathered.sort(key=lambda record: record.key)
            for record in gathered:
                if record.key < lo_key:
                    continue
                if record.key > hi_key:
                    return
                yield record

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def chain_lengths(self) -> List[int]:
        """Overflow-chain length for every primary page."""
        return [
            len(self.chains.get(home, []))
            for home in range(1, self.num_primary_pages + 1)
        ]

    def longest_chain(self) -> int:
        """Length of the longest overflow chain (pages)."""
        lengths = self.chain_lengths()
        return max(lengths) if lengths else 0

    def overflow_pages_used(self) -> int:
        """Total overflow pages allocated so far."""
        return len(self._overflow)
