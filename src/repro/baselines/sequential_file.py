"""The classical packed sequential file (the paper's Section 1 strawman).

Records are stored fully packed: every page holds exactly ``capacity``
records except the last.  An insertion or deletion in the middle shifts
every subsequent record by one slot, i.e. rewrites every page from the
affected one to the end of the file — the "complete reorganization after
the insertion or deletion of a single record" that Wiederhold and the
paper's introduction use to motivate dense files.

The implementation rides on the same :class:`~repro.storage.pagefile.PageFile`
substrate as the dense file, so costs are directly comparable.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..core.errors import (
    ConfigurationError,
    FileFullError,
    RecordNotFoundError,
    UsageError,
)
from ..records import Record, ensure_record
from ..storage.cost import CostModel, PAGE_ACCESS_MODEL
from ..storage.pagefile import PageFile


class PackedSequentialFile:
    """A fully packed sequential file with ripple-shift updates."""

    algorithm_name = "packed sequential file"

    def __init__(
        self,
        num_pages: int,
        capacity: int,
        model: CostModel = PAGE_ACCESS_MODEL,
    ):
        if capacity < 1:
            raise ConfigurationError("page capacity must be positive")
        self.capacity = capacity
        self.pagefile = PageFile(num_pages, model=model)
        self.num_pages = num_pages
        self.size = 0

    @property
    def max_records(self) -> int:
        return self.num_pages * self.capacity

    @property
    def stats(self):
        return self.pagefile.disk.stats

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def bulk_load(self, records) -> None:
        """Pack sorted records into a prefix of the pages."""
        if self.size:
            raise UsageError("bulk_load requires an empty file")
        loaded = sorted(
            (ensure_record(item) for item in records),
            key=lambda record: record.key,
        )
        if len(loaded) > self.max_records:
            raise FileFullError("records exceed file capacity")
        for index in range(0, len(loaded), self.capacity):
            page = index // self.capacity + 1
            self.pagefile.load_page(page, loaded[index : index + self.capacity])
        self.size = len(loaded)

    # ------------------------------------------------------------------
    # updates (each one reorganizes the tail of the file)
    # ------------------------------------------------------------------

    def insert(self, key, value=None) -> None:
        """Insert a record, rippling the tail of the file rightward."""
        if self.size >= self.max_records:
            raise FileFullError("sequential file is full")
        record = Record(key, value)
        page = self.pagefile.locate(key)
        if page is None:
            page = 1
        self.pagefile.insert_record(page, record)
        self.size += 1
        self._ripple_right(page)

    def _ripple_right(self, page: int) -> None:
        """Push the overflow of ``page`` rightward until the file repacks."""
        current = page
        while (
            current <= self.num_pages
            and self.pagefile.page_len(current) > self.capacity
        ):
            if current == self.num_pages:
                raise FileFullError("overflowed the final page")
            self.pagefile.move_records(current, current + 1, 1)
            current += 1

    def delete(self, key) -> Record:
        """Delete ``key``, pulling the tail leftward to stay packed."""
        page = self.pagefile.locate(key)
        if page is None:
            raise RecordNotFoundError(key)
        record = self.pagefile.remove_record(page, key)
        self.size -= 1
        self._ripple_left(page)
        return record

    def _ripple_left(self, page: int) -> None:
        """Pull one record leftward per page to keep the file packed."""
        current = page
        while current < self.num_pages and (
            self.pagefile.page_len(current) < self.capacity
            and self.pagefile.page_len(current + 1) > 0
        ):
            self.pagefile.move_records(current + 1, current, 1)
            current += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def search(self, key) -> Optional[Record]:
        """Return the record with ``key`` or ``None``."""
        page = self.pagefile.locate(key)
        if page is None:
            return None
        return self.pagefile.get(page, key)

    def __contains__(self, key) -> bool:
        return self.search(key) is not None

    def range_scan(self, lo_key, hi_key) -> Iterator[Record]:
        """Stream records with ``lo_key <= key <= hi_key`` in order."""
        return self.pagefile.scan_range(lo_key, hi_key)

    def scan_count(self, start_key, count: int) -> List[Record]:
        """Return up to ``count`` records with key >= ``start_key``."""
        return self.pagefile.scan_count(start_key, count)

    def occupancies(self) -> List[int]:
        """Records per page, as a list of length M."""
        return self.pagefile.occupancies()
