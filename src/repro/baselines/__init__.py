"""Comparison structures: the strawmen and rivals the paper argues against."""

from .btree import BPlusTree
from .overflow_file import OverflowChainFile
from .pma import PackedMemoryArray
from .sequential_file import PackedSequentialFile

__all__ = [
    "BPlusTree",
    "OverflowChainFile",
    "PackedMemoryArray",
    "PackedSequentialFile",
]
