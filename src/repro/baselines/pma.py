"""A classical amortized packed-memory array (sparse table) baseline.

Itai, Konheim and Rodeh's sparse tables — cited by the paper as the
closest prior art to CONTROL 1 — maintain a sorted array with gaps by
rebalancing progressively larger windows when local density crosses
per-level thresholds.  This implementation follows the standard modern
formulation over the same page substrate: pages are the PMA's segments
(capacity ``D``), and over a conceptual binary tree of page windows the
upper density threshold interpolates from ``tau_leaf`` at single pages
down to ``tau_root`` at the whole file, with lower thresholds
``rho_leaf``/``rho_root`` triggering rebalances on deletion.

Amortized cost is ``O(log^2 M)`` record moves per update; worst case is
``O(M)`` — the same spike profile as CONTROL 1, measured in EXP-W2.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..core.errors import (
    ConfigurationError,
    FileFullError,
    RecordNotFoundError,
    UsageError,
)
from ..records import Record, ensure_record
from ..storage.cost import CostModel, PAGE_ACCESS_MODEL
from ..storage.pagefile import PageFile
from ..core.params import ceil_log2


class PackedMemoryArray:
    """A fixed-capacity PMA with page-granular segments."""

    algorithm_name = "packed memory array"

    def __init__(
        self,
        num_pages: int,
        capacity: int,
        tau_root: float = 0.5,
        tau_leaf: float = 1.0,
        rho_root: float = 0.25,
        rho_leaf: float = 0.10,
        model: CostModel = PAGE_ACCESS_MODEL,
    ):
        if num_pages < 2:
            raise ConfigurationError("a PMA needs at least two pages")
        if not 0.0 < tau_root <= tau_leaf <= 1.0:
            raise ConfigurationError("need 0 < tau_root <= tau_leaf <= 1")
        if not 0.0 <= rho_leaf <= rho_root < tau_root:
            raise ConfigurationError("need 0 <= rho_leaf <= rho_root < tau_root")
        self.num_pages = num_pages
        self.capacity = capacity
        self.tau_root = tau_root
        self.tau_leaf = tau_leaf
        self.rho_root = rho_root
        self.rho_leaf = rho_leaf
        self.height = ceil_log2(num_pages)
        self.pagefile = PageFile(num_pages, model=model)
        self.size = 0
        self.rebalances = 0
        self.records_moved_total = 0

    @property
    def stats(self):
        return self.pagefile.disk.stats

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # thresholds
    # ------------------------------------------------------------------

    def _tau(self, level: int) -> float:
        """Upper density threshold at ``level`` (0 = single page)."""
        if self.height == 0:
            return self.tau_leaf
        step = (self.tau_leaf - self.tau_root) / self.height
        return self.tau_leaf - step * level

    def _rho(self, level: int) -> float:
        """Lower density threshold at ``level`` (0 = single page)."""
        if self.height == 0:
            return self.rho_leaf
        step = (self.rho_root - self.rho_leaf) / self.height
        return self.rho_leaf + step * level

    def _window(self, page: int, level: int) -> Tuple[int, int]:
        """The aligned window of ``2**level`` pages containing ``page``."""
        span = 1 << level
        start = ((page - 1) // span) * span + 1
        return start, min(start + span - 1, self.num_pages)

    def _window_count(self, lo: int, hi: int) -> int:
        return sum(
            self.pagefile.page_len(page) for page in range(lo, hi + 1)
        )

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def bulk_load(self, records) -> None:
        """Spread sorted records evenly over the pages (empty PMA only)."""
        if self.size:
            raise UsageError("bulk_load requires an empty PMA")
        loaded = sorted(
            (ensure_record(item) for item in records),
            key=lambda record: record.key,
        )
        if len(loaded) > int(self.tau_root * self.num_pages * self.capacity):
            raise FileFullError("records exceed the PMA's root threshold")
        total = len(loaded)
        cursor = 0
        for page in range(1, self.num_pages + 1):
            upto = (page * total) // self.num_pages
            chunk = loaded[cursor:upto]
            cursor = upto
            if chunk:
                self.pagefile.load_page(page, chunk)
        self.size = total

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert(self, key, value=None) -> None:
        """Insert a record, rebalancing the smallest within-threshold window."""
        if self.size >= int(self.tau_root * self.num_pages * self.capacity):
            raise FileFullError("PMA is at its root density threshold")
        page = self.pagefile.locate(key)
        if page is None:
            page = (self.num_pages + 1) // 2
        self.pagefile.insert_record(page, Record(key, value))
        self.size += 1
        self._rebalance_up(page, after_insert=True)

    def delete(self, key) -> Record:
        """Delete ``key``, rebalancing on lower-threshold violations."""
        page = self.pagefile.locate(key)
        if page is None:
            raise RecordNotFoundError(key)
        record = self.pagefile.remove_record(page, key)
        self.size -= 1
        self._rebalance_up(page, after_insert=False)
        return record

    def _rebalance_up(self, page: int, after_insert: bool) -> None:
        """Walk window levels upward until one is within threshold.

        On insertion the trigger is the upper threshold ``tau``; on
        deletion the lower threshold ``rho``.  The first in-threshold
        window is rebalanced evenly (which restores every window inside
        it to threshold as well); if even the root window is out of
        threshold the structure is declared full/empty accordingly.
        """
        for level in range(0, self.height + 1):
            lo, hi = self._window(page, level)
            slots = (hi - lo + 1) * self.capacity
            count = self._window_count(lo, hi)
            density = count / slots
            threshold = self._tau(level) if after_insert else self._rho(level)
            within = (
                density <= threshold if after_insert else density >= threshold
            )
            if level == 0 and within:
                return  # the page itself absorbed the update
            if within:
                before = self.pagefile.occupancies()
                self.pagefile.redistribute(lo, hi)
                after = self.pagefile.occupancies()
                self.records_moved_total += (
                    sum(abs(a - b) for a, b in zip(after, before)) // 2
                )
                self.rebalances += 1
                return
        if after_insert:
            raise FileFullError("no window within its density threshold")
        # Root below rho: a real PMA would shrink; with fixed capacity we
        # simply spread what is left.
        self.pagefile.redistribute(1, self.num_pages)
        self.rebalances += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def search(self, key) -> Optional[Record]:
        """Return the record with ``key`` or ``None``."""
        page = self.pagefile.locate(key)
        if page is None:
            return None
        return self.pagefile.get(page, key)

    def __contains__(self, key) -> bool:
        return self.search(key) is not None

    def range_scan(self, lo_key, hi_key) -> Iterator[Record]:
        """Stream records with ``lo_key <= key <= hi_key`` in order."""
        return self.pagefile.scan_range(lo_key, hi_key)

    def scan_count(self, start_key, count: int) -> List[Record]:
        """Return up to ``count`` records with key >= ``start_key``."""
        return self.pagefile.scan_count(start_key, count)

    def occupancies(self) -> List[int]:
        """Records per page, as a list of length M."""
        return self.pagefile.occupancies()
