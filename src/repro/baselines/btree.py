"""A disk-resident B+-tree baseline.

Sections 4 and 5 of the paper contrast CONTROL 2 with B-trees: B-trees
may win on update cost, but scanning a *stream* of consecutive keys from
a B-tree pays disk-arm movement because logically adjacent leaves need
not be physically adjacent.  This module implements a full B+-tree over
the same :class:`~repro.storage.disk.SimulatedDisk` substrate — splits,
borrows and merges included — with pages allocated in creation order, so
that after a mixed update history the leaf chain is physically scattered
exactly the way the paper's argument assumes.

Every node occupies one disk page; descending the tree charges one read
per level and structural changes charge one write per touched node.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.errors import (
    ConfigurationError,
    DuplicateKeyError,
    RecordNotFoundError,
    UsageError,
)
from ..records import Record, ensure_record
from ..storage.cost import CostModel, PAGE_ACCESS_MODEL
from ..storage.disk import SimulatedDisk


class _Node:
    """One B+-tree node, resident on a single disk page."""

    __slots__ = ("page", "is_leaf", "keys", "children", "records", "next_leaf")

    def __init__(self, page: int, is_leaf: bool):
        self.page = page
        self.is_leaf = is_leaf
        self.keys: List = []          # separators (internal) or record keys (leaf)
        self.children: List[int] = []  # child page ids (internal only)
        self.records: List[Record] = []  # leaf only
        self.next_leaf: int = 0        # leaf chain (0 = end)


class BPlusTree:
    """A B+-tree with configurable fanout and leaf capacity.

    Parameters
    ----------
    fanout:
        Maximum number of children of an internal node (>= 3).
    leaf_capacity:
        Maximum records per leaf (>= 2); pass the dense file's ``D`` for
        an apples-to-apples page size.
    """

    algorithm_name = "B+-tree"

    def __init__(
        self,
        fanout: int = 8,
        leaf_capacity: int = 8,
        model: CostModel = PAGE_ACCESS_MODEL,
        cache_internal_nodes: bool = False,
    ):
        if fanout < 3:
            raise ConfigurationError("fanout must be at least 3")
        if leaf_capacity < 2:
            raise ConfigurationError("leaf_capacity must be at least 2")
        self.fanout = fanout
        self.leaf_capacity = leaf_capacity
        #: When True, internal-node touches are free: they model a
        #: buffer pool pinning the (small) upper levels, the same
        #: assumption under which the dense file's calibrator and page
        #: directory live in core.  Leaf touches always charge.
        self.cache_internal_nodes = cache_internal_nodes
        self.disk = SimulatedDisk(0, model)
        self._nodes: Dict[int, _Node] = {}
        self.root_page = self._allocate(is_leaf=True).page
        self.size = 0
        self.height = 1

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @property
    def stats(self):
        return self.disk.stats

    def __len__(self) -> int:
        return self.size

    def _allocate(self, is_leaf: bool) -> _Node:
        page = self.disk.extend(1)
        node = _Node(page, is_leaf)
        self._nodes[page] = node
        return node

    def _load(self, page: int) -> _Node:
        node = self._nodes[page]
        if node.is_leaf or not self.cache_internal_nodes:
            self.disk.read(page)
        return node

    def _store(self, node: _Node) -> None:
        if node.is_leaf or not self.cache_internal_nodes:
            self.disk.write(node.page)

    def _free(self, node: _Node) -> None:
        # Freed pages are not recycled: creation order defines physical
        # layout, and holes only make the seek picture milder.
        del self._nodes[node.page]

    @property
    def _min_leaf(self) -> int:
        return self.leaf_capacity // 2

    @property
    def _min_keys(self) -> int:
        return (self.fanout - 1) // 2

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def _descend_to_leaf(self, key) -> _Node:
        node = self._load(self.root_page)
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = self._load(node.children[index])
        return node

    def search(self, key) -> Optional[Record]:
        """Return the record with ``key`` or ``None`` (one read per level)."""
        leaf = self._descend_to_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.records[index]
        return None

    def __contains__(self, key) -> bool:
        return self.search(key) is not None

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, key, value=None) -> None:
        """Insert a record, splitting nodes upward as needed."""
        record = Record(key, value)
        split = self._insert(self.root_page, record)
        if split is not None:
            separator, right_page = split
            old_root = self.root_page
            new_root = self._allocate(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [old_root, right_page]
            self.root_page = new_root.page
            self._store(new_root)
            self.height += 1
        self.size += 1

    def _insert(self, page: int, record: Record) -> Optional[Tuple[object, int]]:
        node = self._load(page)
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, record.key)
            if index < len(node.keys) and node.keys[index] == record.key:
                raise DuplicateKeyError(record.key)
            node.keys.insert(index, record.key)
            node.records.insert(index, record)
            if len(node.keys) <= self.leaf_capacity:
                self._store(node)
                return None
            return self._split_leaf(node)
        index = bisect.bisect_right(node.keys, record.key)
        split = self._insert(node.children[index], record)
        if split is None:
            return None
        separator, right_page = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right_page)
        if len(node.keys) < self.fanout:
            self._store(node)
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node) -> Tuple[object, int]:
        sibling = self._allocate(is_leaf=True)
        mid = len(node.keys) // 2
        sibling.keys = node.keys[mid:]
        sibling.records = node.records[mid:]
        del node.keys[mid:]
        del node.records[mid:]
        sibling.next_leaf = node.next_leaf
        node.next_leaf = sibling.page
        self._store(node)
        self._store(sibling)
        return sibling.keys[0], sibling.page

    def _split_internal(self, node: _Node) -> Tuple[object, int]:
        sibling = self._allocate(is_leaf=False)
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        sibling.keys = node.keys[mid + 1 :]
        sibling.children = node.children[mid + 1 :]
        del node.keys[mid:]
        del node.children[mid + 1 :]
        self._store(node)
        self._store(sibling)
        return separator, sibling.page

    # ------------------------------------------------------------------
    # deletion (with borrow / merge rebalancing)
    # ------------------------------------------------------------------

    def delete(self, key) -> Record:
        """Delete ``key``, borrowing/merging to repair underflows."""
        removed = self._delete(self.root_page, key)
        root = self._nodes[self.root_page]
        if not root.is_leaf and len(root.children) == 1:
            # Collapse a root left with a single child.
            only_child = root.children[0]
            self._free(root)
            self.root_page = only_child
            self.height -= 1
        self.size -= 1
        return removed

    def _delete(self, page: int, key) -> Record:
        node = self._load(page)
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                raise RecordNotFoundError(key)
            node.keys.pop(index)
            removed = node.records.pop(index)
            self._store(node)
            return removed
        index = bisect.bisect_right(node.keys, key)
        removed = self._delete(node.children[index], key)
        self._fix_underflow(node, index)
        return removed

    def _underflowing(self, child: _Node) -> bool:
        if child.is_leaf:
            return len(child.keys) < self._min_leaf
        return len(child.keys) < self._min_keys

    def _fix_underflow(self, parent: _Node, index: int) -> None:
        child = self._nodes[parent.children[index]]
        if not self._underflowing(child):
            return
        if index > 0:
            left = self._load(parent.children[index - 1])
            if self._can_lend(left):
                self._borrow_from_left(parent, index, left, child)
                return
        if index + 1 < len(parent.children):
            right = self._load(parent.children[index + 1])
            if self._can_lend(right):
                self._borrow_from_right(parent, index, child, right)
                return
        if index > 0:
            left = self._nodes[parent.children[index - 1]]
            self._merge(parent, index - 1, left, child)
        else:
            right = self._nodes[parent.children[index + 1]]
            self._merge(parent, index, child, right)

    def _can_lend(self, node: _Node) -> bool:
        if node.is_leaf:
            return len(node.keys) > self._min_leaf
        return len(node.keys) > self._min_keys

    def _borrow_from_left(
        self, parent: _Node, index: int, left: _Node, child: _Node
    ) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.records.insert(0, left.records.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        self._store(left)
        self._store(child)
        self._store(parent)

    def _borrow_from_right(
        self, parent: _Node, index: int, child: _Node, right: _Node
    ) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.records.append(right.records.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        self._store(right)
        self._store(child)
        self._store(parent)

    def _merge(self, parent: _Node, index: int, left: _Node, right: _Node) -> None:
        """Fold ``right`` into ``left``; ``index`` is left's child slot."""
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.records.extend(right.records)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(index)
        parent.children.pop(index + 1)
        self._store(left)
        self._store(parent)
        self._free(right)

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------

    def range_scan(self, lo_key, hi_key) -> Iterator[Record]:
        """Stream records in ``[lo_key, hi_key]`` following the leaf chain."""
        leaf = self._descend_to_leaf(lo_key)
        while True:
            for record_key, record in zip(leaf.keys, leaf.records):
                if record_key < lo_key:
                    continue
                if record_key > hi_key:
                    return
                yield record
            if not leaf.next_leaf:
                return
            leaf = self._load(leaf.next_leaf)

    def scan_count(self, start_key, count: int) -> List[Record]:
        """Return up to ``count`` records with key >= ``start_key``."""
        result: List[Record] = []
        leaf = self._descend_to_leaf(start_key)
        while len(result) < count:
            for record_key, record in zip(leaf.keys, leaf.records):
                if record_key >= start_key and len(result) < count:
                    result.append(record)
            if not leaf.next_leaf or len(result) >= count:
                return result
            leaf = self._load(leaf.next_leaf)
        return result

    # ------------------------------------------------------------------
    # bulk load
    # ------------------------------------------------------------------

    def bulk_load(self, records, fill_factor: float = 0.75) -> None:
        """Build the tree bottom-up from sorted records.

        Leaves are allocated consecutively (a freshly loaded B+-tree *is*
        physically sequential; only subsequent updates scatter it).
        """
        if self.size:
            raise UsageError("bulk_load requires an empty tree")
        loaded = sorted(
            (ensure_record(item) for item in records),
            key=lambda record: record.key,
        )
        if not loaded:
            return
        per_leaf = max(1, min(self.leaf_capacity, int(self.leaf_capacity * fill_factor)))
        # Replace the initial empty root.
        self._free(self._nodes[self.root_page])
        leaves: List[_Node] = []
        for start in range(0, len(loaded), per_leaf):
            chunk = loaded[start : start + per_leaf]
            leaf = self._allocate(is_leaf=True)
            leaf.records = list(chunk)
            leaf.keys = [record.key for record in chunk]
            if leaves:
                leaves[-1].next_leaf = leaf.page
            leaves.append(leaf)
            self._store(leaf)
        level: List[_Node] = leaves
        self.height = 1
        while len(level) > 1:
            parents: List[_Node] = []
            group = max(2, self.fanout - 1)
            for start in range(0, len(level), group):
                chunk = level[start : start + group]
                if len(chunk) == 1 and parents:
                    # Avoid a 1-child internal node: attach to the
                    # previous parent instead.
                    parents[-1].children.append(chunk[0].page)
                    parents[-1].keys.append(self._subtree_min(chunk[0]))
                    self._store(parents[-1])
                    continue
                parent = self._allocate(is_leaf=False)
                parent.children = [node.page for node in chunk]
                parent.keys = [
                    self._subtree_min(node) for node in chunk[1:]
                ]
                parents.append(parent)
                self._store(parent)
            level = parents
            self.height += 1
        self.root_page = level[0].page
        self.size = len(loaded)

    def _subtree_min(self, node: _Node):
        while not node.is_leaf:
            node = self._nodes[node.children[0]]
        return node.keys[0]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def leaf_pages_in_order(self) -> List[int]:
        """Physical page numbers of the leaves in key order."""
        node = self._nodes[self.root_page]
        while not node.is_leaf:
            node = self._nodes[node.children[0]]
        pages = []
        while True:
            pages.append(node.page)
            if not node.next_leaf:
                return pages
            node = self._nodes[node.next_leaf]

    def check_invariants(self) -> None:
        """Structural self-check used by the test suite."""
        count = self._check_node(self.root_page, None, None, is_root=True)
        if count != self.size:
            raise AssertionError(
                f"tree holds {count} records but size says {self.size}"
            )

    def _check_node(self, page: int, lo, hi, is_root: bool = False) -> int:
        node = self._nodes[page]
        keys = node.keys
        if any(keys[i] >= keys[i + 1] for i in range(len(keys) - 1)):
            raise AssertionError(f"unsorted keys in page {page}")
        for key in keys:
            if lo is not None and key < lo:
                raise AssertionError(f"key {key} below bound in page {page}")
            if hi is not None and key >= hi:
                raise AssertionError(f"key {key} above bound in page {page}")
        if node.is_leaf:
            if not is_root and len(keys) < self._min_leaf:
                raise AssertionError(f"leaf underflow in page {page}")
            if len(keys) > self.leaf_capacity:
                raise AssertionError(f"leaf overflow in page {page}")
            return len(keys)
        if not is_root and len(keys) < self._min_keys:
            raise AssertionError(f"internal underflow in page {page}")
        if len(keys) >= self.fanout:
            raise AssertionError(f"internal overflow in page {page}")
        if len(node.children) != len(keys) + 1:
            raise AssertionError(f"child/key mismatch in page {page}")
        total = 0
        bounds = [lo] + list(keys) + [hi]
        for child, (child_lo, child_hi) in zip(
            node.children, zip(bounds[:-1], bounds[1:])
        ):
            total += self._check_node(child, child_lo, child_hi)
        return total
