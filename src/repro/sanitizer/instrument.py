"""Instrumented wrappers: zero-cost when off, by construction.

The sanitizer never patches live objects or branches on an "enabled"
flag in the hot path.  Instead, *sanitize mode builds a different
stack*: the store is wrapped in :class:`SanitizedStore` (a
:class:`~repro.storage.backend.DelegatingStore` that reports one event
per metered touch before delegating) and the front-end is given a
:class:`SanitizedRWLock` (a :class:`~repro.concurrent.rwlock.FairRWLock`
subclass that reports request/acquire/release around the inherited
behaviour).  With the sanitizer off the plain classes are used and not
one instruction changes — which is what makes the overhead-gate
satellite (bit-identical logical counters, wall-clock within the bench
gate) hold trivially rather than approximately.

The store seam is the LNT001 seam: the accounting lint rule already
forces every engine's physical traffic through
``get_page``/``get_page2``/``put_page``/``move_records`` on the store
attribute, so wrapping the store is guaranteed to observe every
metered page touch.  ``peek`` is also reported (as a read): it is
uncharged *cost-wise* but still a shared-memory access the detector
must order.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..concurrent.deadline import Deadline
from ..concurrent.rwlock import FairRWLock
from ..storage.backend import DelegatingStore, PageStore
from ..storage.page import Page
from .runtime import READ, WRITE, SanitizerRuntime


class SanitizedStore(DelegatingStore):
    """Report every metered page touch, then delegate unchanged.

    Decorating the *outermost* store of a stack observes exactly the
    logical access sequence the engine issues (the same sequence the
    paper's accounting charges); inner caching layers keep their own
    traffic invisible, which is correct — a buffer-pool hit still reads
    the shared page object.
    """

    name = "sanitized"
    passthrough_reads = True

    def __init__(
        self,
        inner: PageStore,
        runtime: SanitizerRuntime,
        label: str = "store",
    ):
        super().__init__(inner)
        self._runtime = runtime
        self._label = runtime.register_label(label)

    def _resource(self, page_number: int) -> str:
        return f"{self._label}:page[{page_number}]"

    def peek(self, page_number: int) -> Page:
        self._runtime.on_access(self._resource(page_number), READ)
        return self.inner.peek(page_number)

    def get_page(self, page_number: int) -> Page:
        self._runtime.on_access(self._resource(page_number), READ)
        return self.inner.get_page(page_number)

    def get_page2(self, page_number: int) -> Page:
        # Two fused logical reads: one event suffices for the detector
        # (the second touch carries no extra ordering information).
        self._runtime.on_access(self._resource(page_number), READ)
        return self.inner.get_page2(page_number)

    def put_page(self, page_number: int) -> None:
        self._runtime.on_access(self._resource(page_number), WRITE)
        self.inner.put_page(page_number)

    def move_records(self, source: int, dest: int, count: int) -> int:
        # The SHIFT touch sequence the logical meter charges: read the
        # source, write the destination, write the source back.
        self._runtime.on_access(self._resource(source), READ)
        self._runtime.on_access(self._resource(dest), WRITE)
        self._runtime.on_access(self._resource(source), WRITE)
        return self.inner.move_records(source, dest, count)


class SanitizedRWLock(FairRWLock):
    """A :class:`FairRWLock` that reports its events to the runtime.

    Requests are reported *before* blocking (so a deadlocked or
    timed-out acquisition still records its lock-order edge), releases
    *before* the waiters wake (so the published vector clock is visible
    to whoever acquires next).  The ``*_locked`` context-manager
    helpers inherit from the base class and dispatch through the
    overridden methods.
    """

    def __init__(
        self,
        runtime: SanitizerRuntime,
        label: str = "rwlock",
        clock: Callable[[], float] = time.monotonic,
    ):
        super().__init__(clock=clock)
        self._runtime = runtime
        self._label = runtime.register_label(label)

    @property
    def label(self) -> str:
        """The runtime-unique instance label (for tests and reports)."""
        return self._label

    def acquire_read(self, deadline: Optional[Deadline] = None) -> None:
        self._runtime.on_acquire_request(self._label, READ)
        super().acquire_read(deadline)
        self._runtime.on_acquired(self._label, READ)

    def acquire_write(self, deadline: Optional[Deadline] = None) -> None:
        self._runtime.on_acquire_request(self._label, WRITE)
        super().acquire_write(deadline)
        self._runtime.on_acquired(self._label, WRITE)

    def release_read(self) -> None:
        self._runtime.on_release(self._label, READ)
        super().release_read()

    def release_write(self) -> None:
        self._runtime.on_release(self._label, WRITE)
        super().release_write()


class SanitizedMutex:
    """A plain mutex whose acquire/release feed the runtime.

    The cluster and replication layers guard their tables with
    ``threading.Lock``; this wrapper gives tests and future refactors
    an instrumented drop-in (``with``-compatible, explicit
    ``acquire``/``release``) so mutex-only protocols participate in
    lockset refinement, happens-before edges and the lock-order graph
    exactly like the reader-writer lock.
    """

    def __init__(self, runtime: SanitizerRuntime, label: str = "mutex"):
        self._lock = threading.Lock()
        self._runtime = runtime
        self._label = runtime.register_label(label)

    @property
    def label(self) -> str:
        """The runtime-unique instance label (for tests and reports)."""
        return self._label

    def acquire(self, timeout: Optional[float] = None) -> bool:
        """Take the mutex, reporting request and grant to the runtime."""
        self._runtime.on_acquire_request(self._label, WRITE)
        acquired = self._lock.acquire(
            timeout=-1 if timeout is None else timeout
        )
        if acquired:
            self._runtime.on_acquired(self._label, WRITE)
        return acquired

    def release(self) -> None:
        """Drop the mutex, publishing the holder's clock first."""
        self._runtime.on_release(self._label, WRITE)
        self._lock.release()

    def __enter__(self) -> "SanitizedMutex":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()
