"""Vector clocks: the partial order behind happens-before reasoning.

A :class:`VectorClock` maps thread indices to event counters.  Clock
``a`` *dominates* clock ``b`` when every component of ``a`` is at least
the matching component of ``b`` — meaning everything ``b`` had observed
when it was taken had already been observed at ``a``.  The sanitizer
threads these clocks through lock release/acquire pairs: a release
publishes the releasing thread's clock into the lock, an acquire joins
the lock's clock into the acquirer, so any two accesses bracketed by
the same lock become ordered even when the lockset heuristic cannot
name the protecting lock.

Individual accesses are summarized FastTrack-style as *epochs* — a
``(thread_index, counter)`` pair — which :meth:`VectorClock.observed`
checks against a later thread's clock in O(1) instead of comparing
whole clocks.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: One access, compressed: (thread index, that thread's counter).
Epoch = Tuple[int, int]


class VectorClock:
    """A thread-index → counter map with join/tick/dominate operations."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Optional[Dict[int, int]] = None):
        self._counts: Dict[int, int] = dict(counts) if counts else {}

    def copy(self) -> "VectorClock":
        """An independent snapshot of this clock."""
        return VectorClock(self._counts)

    def get(self, thread_index: int) -> int:
        """The counter for ``thread_index`` (0 when never observed)."""
        return self._counts.get(thread_index, 0)

    def tick(self, thread_index: int) -> None:
        """Advance ``thread_index``'s own component by one event."""
        self._counts[thread_index] = self._counts.get(thread_index, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum: absorb everything ``other`` has observed."""
        counts = self._counts
        for index, count in other._counts.items():
            if count > counts.get(index, 0):
                counts[index] = count

    def epoch(self, thread_index: int) -> Epoch:
        """This clock's current epoch for ``thread_index``."""
        return (thread_index, self.get(thread_index))

    def observed(self, epoch: Epoch, thread_index: int) -> bool:
        """Whether ``epoch`` happens-before the owner of this clock.

        True when the epoch belongs to ``thread_index`` itself (program
        order) or when this clock has absorbed the epoch's counter via
        some chain of release/acquire joins.
        """
        owner, count = epoch
        return owner == thread_index or self.get(owner) >= count

    def dominates(self, other: "VectorClock") -> bool:
        """Whether every component of ``self`` >= the one in ``other``."""
        return all(
            self.get(index) >= count
            for index, count in other._counts.items()
        )

    def as_dict(self) -> Dict[int, int]:
        """A plain-dict snapshot (for reports and tests)."""
        return dict(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"T{index}:{count}"
            for index, count in sorted(self._counts.items())
        )
        return f"VectorClock({{{inner}}})"
