"""Dynamic concurrency sanitizer: lockset + happens-before + lock order.

The static lint rules (LNT001–LNT008) prove properties of the *code*;
this package proves properties of a *run*.  Sanitize mode rebuilds the
stack with instrumented wrappers — :class:`SanitizedStore` over the
metered :class:`~repro.storage.backend.PageStore` seam,
:class:`SanitizedRWLock` over the front-end's
:class:`~repro.concurrent.rwlock.FairRWLock` — feeding a passive
:class:`SanitizerRuntime` that runs an Eraser-style lockset state
machine, FastTrack-style vector-clock happens-before checks, and a
lock-acquisition-order graph.  Verdicts are deterministic under the
torture harness's seeded schedules because every detector depends only
on the per-thread event sets, never on the interleaving the OS chose.

Entry points: ``repro stress --sanitize`` (and
``tools/stress.py --sanitize``) run the torture harness sanitized;
:func:`sanitize_self_test` adds the planted negative controls.  With
the sanitizer off, none of these classes is instantiated — the plain
stack runs unmodified, so the off-mode overhead is zero by
construction (see ``benchmarks/test_sanitizer_overhead.py``).
"""

from .controls import (
    SanitizeSelfTestReport,
    planted_abba,
    planted_unlocked_write,
    sanitize_self_test,
)
from .instrument import SanitizedMutex, SanitizedRWLock, SanitizedStore
from .runtime import READ, WRITE, RaceFinding, RaceReport, SanitizerRuntime
from .vectorclock import VectorClock

__all__ = [
    "READ",
    "WRITE",
    "RaceFinding",
    "RaceReport",
    "SanitizeSelfTestReport",
    "SanitizedMutex",
    "SanitizedRWLock",
    "SanitizedStore",
    "SanitizerRuntime",
    "VectorClock",
    "planted_abba",
    "planted_unlocked_write",
    "sanitize_self_test",
]
