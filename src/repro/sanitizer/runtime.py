"""The race-detection core: lockset state machine + happens-before.

:class:`SanitizerRuntime` is a passive event sink.  Instrumented locks
(:class:`~repro.sanitizer.instrument.SanitizedRWLock`,
:class:`~repro.sanitizer.instrument.SanitizedMutex`) report
request/acquire/release events; the instrumented store
(:class:`~repro.sanitizer.instrument.SanitizedStore`) reports one
access event per metered page touch — the same ``get_page``/``put_page``
seam the LNT001 accounting rule guarantees every engine goes through,
so instrumentation coverage is lint-enforced rather than hoped for.

Three detectors run over the event stream:

**Eraser lockset.**  Each shared variable (page) carries a candidate
set C(v) of locks that protected *every* access so far.  A variable is
born VIRGIN, becomes EXCLUSIVE for its first (single-threaded,
initialization) owner, SHARED once a second thread reads it and
SHARED-MODIFIED once a second thread is involved in writing it.  From
the moment a second thread touches the variable, every read refines
C(v) by the locks the reader holds in *any* mode and every write
refines by the locks held in *write* mode (the read-write-lock
refinement from the Eraser paper, §3.4).  An empty C(v) in the
SHARED-MODIFIED state means no single lock protected the variable.

**Vector-clock happens-before.**  Lockset alone over-reports
fork/join- or ordering-based protocols, so an empty lockset is only a
*candidate* race: the access must also be concurrent with a prior
conflicting access.  Each thread carries a
:class:`~repro.sanitizer.vectorclock.VectorClock`; a release publishes
the holder's clock into the lock, an acquire joins it back, and each
variable remembers its last-write epoch and per-thread read epochs
(FastTrack's representation).  A finding is emitted only when the
lockset is empty *and* some prior conflicting epoch is unordered with
the current access — which is what makes the clean tree report exactly
zero findings while the planted unlocked write stays caught under any
interleaving, including a fully sequential one.

**Lock-order graph.**  Every acquisition *request* records a
``held → requested`` edge for each lock the requester already holds —
at request time, before blocking, so a request that deadlocks or times
out still leaves its evidence.  :meth:`SanitizerRuntime.report` then
searches the accumulated digraph for cycles: an ABBA pattern is
reported even when the schedule happened to serialize the two clients,
which is precisely why the planted-deadlock negative control is
deterministic.  Nested acquisition of one non-reentrant lock is
flagged immediately as a self-deadlock.

Determinism: every detector is a function of the *set* of events per
thread, not of their global interleaving, so a fixed seed gives a
fixed verdict.  The runtime serializes its own bookkeeping behind one
internal mutex; it never touches the locks it observes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .vectorclock import Epoch, VectorClock

#: Access kinds reported by the instrumented store.
READ, WRITE = "read", "write"

#: Lockset states (the Eraser state machine).
VIRGIN, EXCLUSIVE, SHARED, SHARED_MODIFIED = (
    "virgin", "exclusive", "shared", "shared-modified",
)


@dataclass(frozen=True, order=True)
class RaceFinding:
    """One detector verdict: an unprotected access or a lock cycle."""

    kind: str  # "unlocked-access" | "lock-order-cycle" | "self-deadlock"
    resource: str
    detail: str
    threads: Tuple[str, ...] = ()

    def render(self) -> str:
        """One-line rendering for reports and CLI output."""
        who = f" [{', '.join(self.threads)}]" if self.threads else ""
        return f"{self.kind}: {self.resource}: {self.detail}{who}"


@dataclass
class RaceReport:
    """Everything one sanitized run observed, findings first."""

    findings: List[RaceFinding] = field(default_factory=list)
    accesses: int = 0
    lock_events: int = 0
    threads: int = 0
    locks: int = 0
    resources: int = 0
    lock_edges: int = 0

    @property
    def ok(self) -> bool:
        """Clean run: no unlocked access, no lock-order cycle."""
        return not self.findings

    def counters(self) -> Dict[str, int]:
        """The volume counters as a flat dict (for StressReport)."""
        return {
            "accesses": self.accesses,
            "lock_events": self.lock_events,
            "threads": self.threads,
            "locks": self.locks,
            "resources": self.resources,
            "lock_edges": self.lock_edges,
            "findings": len(self.findings),
        }

    def summary(self) -> str:
        """Human-readable verdict with the volume counters."""
        verdict = "CLEAN" if self.ok else "RACY"
        lines = [
            f"sanitizer: {verdict} — {self.accesses} accesses / "
            f"{self.lock_events} lock events across {self.threads} "
            f"thread(s), {self.resources} resource(s), "
            f"{self.locks} lock(s)"
        ]
        for finding in self.findings:
            lines.append(f"  RACE: {finding.render()}")
        return "\n".join(lines)


class _ThreadState:
    """Per-thread bookkeeping: label, clock and the stack of held locks."""

    __slots__ = ("index", "label", "clock", "held")

    def __init__(self, index: int):
        self.index = index
        self.label = f"T{index}"
        self.clock = VectorClock()
        self.clock.tick(index)
        #: (lock label, mode) in acquisition order; a lock held in both
        #: modes never happens (FairRWLock is not reentrant).
        self.held: List[Tuple[str, str]] = []

    def held_labels(self, write_only: bool) -> Set[str]:
        return {
            label
            for label, mode in self.held
            if not write_only or mode == WRITE
        }


class _LockState:
    """Per-lock bookkeeping: the clock published by the last releases."""

    __slots__ = ("label", "release_clock")

    def __init__(self, label: str):
        self.label = label
        self.release_clock = VectorClock()


class _VarState:
    """Per-resource lockset state machine plus FastTrack epochs."""

    __slots__ = (
        "state", "owner", "lockset", "last_write", "last_write_label",
        "read_epochs", "reported",
    )

    def __init__(self) -> None:
        self.state = VIRGIN
        self.owner: Optional[int] = None
        #: ``None`` means "not yet constrained" (still single-threaded).
        self.lockset: Optional[Set[str]] = None
        self.last_write: Optional[Epoch] = None
        self.last_write_label = ""
        self.read_epochs: Dict[int, int] = {}
        self.reported = False


class SanitizerRuntime:
    """Collects lock and access events; renders verdicts on demand."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._threads: Dict[threading.Thread, _ThreadState] = {}
        self._locks: Dict[str, _LockState] = {}
        self._vars: Dict[str, _VarState] = {}
        #: held-label -> requested-labels, accumulated at request time.
        self._order_edges: Dict[str, Set[str]] = {}
        self._findings: List[RaceFinding] = []
        self._label_counts: Dict[str, int] = {}
        self._accesses = 0
        self._lock_events = 0

    # -- registration ---------------------------------------------------

    def register_label(self, prefix: str) -> str:
        """A unique instance label (``rwlock``, ``rwlock#2``, ...)."""
        with self._mutex:
            count = self._label_counts.get(prefix, 0) + 1
            self._label_counts[prefix] = count
            return prefix if count == 1 else f"{prefix}#{count}"

    def _thread(self) -> _ThreadState:
        # Keyed by the Thread *object*, not its ident: the OS reuses
        # idents once a thread exits, and the controls deliberately run
        # their clients one-after-another — keeping a strong reference
        # to each Thread guarantees two distinct threads never alias.
        current = threading.current_thread()
        state = self._threads.get(current)
        if state is None:
            state = _ThreadState(len(self._threads))
            self._threads[current] = state
        return state

    def _lock(self, label: str) -> _LockState:
        state = self._locks.get(label)
        if state is None:
            state = _LockState(label)
            self._locks[label] = state
        return state

    # -- lock events ----------------------------------------------------

    def on_acquire_request(self, label: str, mode: str) -> None:
        """A thread is about to block on ``label`` (edge recorded now)."""
        with self._mutex:
            self._lock_events += 1
            thread = self._thread()
            for held_label, _held_mode in thread.held:
                if held_label == label:
                    # FairRWLock and SanitizedMutex are not reentrant: a
                    # nested request waits on itself forever (or until
                    # its deadline).  Deterministic, so report directly.
                    self._findings.append(RaceFinding(
                        kind="self-deadlock",
                        resource=label,
                        detail=(
                            f"nested acquisition of non-reentrant lock "
                            f"{label!r} ({mode}) while already held"
                        ),
                        threads=(thread.label,),
                    ))
                else:
                    self._order_edges.setdefault(
                        held_label, set()
                    ).add(label)

    def on_acquired(self, label: str, mode: str) -> None:
        """``label`` is now held in ``mode``; absorb its release clock."""
        with self._mutex:
            self._lock_events += 1
            thread = self._thread()
            thread.held.append((label, mode))
            thread.clock.join(self._lock(label).release_clock)

    def on_release(self, label: str, mode: str) -> None:
        """``label`` is being released; publish the holder's clock."""
        with self._mutex:
            self._lock_events += 1
            thread = self._thread()
            for position in range(len(thread.held) - 1, -1, -1):
                if thread.held[position][0] == label:
                    del thread.held[position]
                    break
            self._lock(label).release_clock.join(thread.clock)
            thread.clock.tick(thread.index)

    # -- access events --------------------------------------------------

    def on_access(self, resource: str, kind: str) -> None:
        """One metered touch of ``resource`` (``READ`` or ``WRITE``)."""
        with self._mutex:
            self._accesses += 1
            thread = self._thread()
            var = self._vars.get(resource)
            if var is None:
                var = _VarState()
                self._vars[resource] = var
            self._step_lockset(var, thread, resource, kind)
            # Record this access's epoch for later HB checks.
            if kind == WRITE:
                var.last_write = thread.clock.epoch(thread.index)
                var.last_write_label = thread.label
                var.read_epochs.clear()
            else:
                var.read_epochs[thread.index] = thread.clock.get(
                    thread.index
                )

    def _step_lockset(
        self,
        var: _VarState,
        thread: _ThreadState,
        resource: str,
        kind: str,
    ) -> None:
        """Advance the Eraser state machine; report when it empties."""
        if var.state == VIRGIN:
            var.state = EXCLUSIVE
            var.owner = thread.index
            return
        if var.state == EXCLUSIVE and var.owner == thread.index:
            return
        # A second thread is involved: refine the candidate lockset.
        # Reads count locks held in any mode, writes only write-mode
        # holds (a read lock does not order two writers).
        candidate = thread.held_labels(write_only=kind == WRITE)
        if var.lockset is None:
            var.lockset = set(candidate)
        else:
            var.lockset &= candidate
        if var.state == EXCLUSIVE:
            var.state = SHARED
        if kind == WRITE:
            var.state = SHARED_MODIFIED
        if (
            var.state == SHARED_MODIFIED
            and not var.lockset
            and not var.reported
        ):
            conflict = self._concurrent_conflict(var, thread, kind)
            if conflict is not None:
                var.reported = True
                self._findings.append(RaceFinding(
                    kind="unlocked-access",
                    resource=resource,
                    detail=(
                        f"{kind} with empty lockset, concurrent with "
                        f"{conflict}"
                    ),
                    threads=(thread.label,),
                ))

    def _concurrent_conflict(
        self, var: _VarState, thread: _ThreadState, kind: str
    ) -> Optional[str]:
        """A prior conflicting access NOT ordered before this one, if any."""
        write = var.last_write
        if write is not None and not thread.clock.observed(
            write, thread.index
        ):
            return f"{var.last_write_label}'s write"
        if kind == WRITE:
            for reader, count in var.read_epochs.items():
                if not thread.clock.observed((reader, count), thread.index):
                    return f"T{reader}'s read"
        return None

    # -- verdicts -------------------------------------------------------

    def _order_cycles(self) -> List[List[str]]:
        """Distinct cycles in the accumulated lock-order digraph."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[str, int] = {}
        stack: List[str] = []
        cycles: List[List[str]] = []
        seen: Set[Tuple[str, ...]] = set()

        def visit(node: str) -> None:
            color[node] = GRAY
            stack.append(node)
            for succ in sorted(self._order_edges.get(node, ())):
                state = color.get(succ, WHITE)
                if state == GRAY:
                    cycle = stack[stack.index(succ):]
                    pivot = cycle.index(min(cycle))
                    key = tuple(cycle[pivot:] + cycle[:pivot])
                    if key not in seen:
                        seen.add(key)
                        cycles.append(list(key))
                elif state == WHITE:
                    visit(succ)
            stack.pop()
            color[node] = BLACK

        for node in sorted(self._order_edges):
            if color.get(node, WHITE) == WHITE:
                visit(node)
        return cycles

    def report(self) -> RaceReport:
        """Freeze the verdict: access findings plus lock-order cycles."""
        with self._mutex:
            findings = list(self._findings)
            for cycle in self._order_cycles():
                path = " -> ".join(cycle + [cycle[0]])
                findings.append(RaceFinding(
                    kind="lock-order-cycle",
                    resource=cycle[0],
                    detail=f"acquisition order cycle {path}",
                ))
            return RaceReport(
                findings=sorted(findings),
                accesses=self._accesses,
                lock_events=self._lock_events,
                threads=len(self._threads),
                locks=len(self._locks),
                resources=len(self._vars),
                lock_edges=sum(
                    len(out) for out in self._order_edges.values()
                ),
            )
