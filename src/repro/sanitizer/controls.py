"""Negative controls: the sanitizer proves its own teeth, deterministically.

The torture harness's original negative controls rely on *provoking*
a bad interleaving (a yielding store widens race windows; a barrier
forces an ABBA meet).  The sanitizer's controls are stronger: lockset
refinement and the lock-order graph are functions of the *set* of
events each thread produced, not of their interleaving, so the planted
bugs below are detected even when the scheduler happens to serialize
the threads completely.  Each control runs its threads strictly one
after the other — the worst case for a dynamic race detector — and
must still produce a finding under any fixed seed.

:func:`sanitize_self_test` packages the controls with a sanitized
clean run (which must report exactly zero findings) into one verdict
for ``repro stress --sanitize --self-test`` and the CI
``sanitize-smoke`` job.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..concurrent.file import ThreadSafeDenseFile
from ..core.dense_file import DenseSequentialFile
from ..core.params import ceil_log2
from ..storage.backend import MemoryStore
from .instrument import SanitizedRWLock, SanitizedStore
from .runtime import RaceReport, SanitizerRuntime

if TYPE_CHECKING:  # pragma: no cover - the harness imports us lazily
    from ..concurrent.harness import StressReport


def _planted_geometry() -> tuple:
    num_pages, d = 16, 8
    return num_pages, d, d + 3 * ceil_log2(num_pages) + 4


def planted_unlocked_write(seed: int = 0) -> RaceReport:
    """Two threads mutate the same pages with no lock at all.

    The threads run *sequentially* (each joined before the next
    starts), so the structure itself never corrupts and an
    outcome-checking harness would see nothing wrong — yet the second
    thread's writes arrive with an empty lockset and no happens-before
    edge to the first thread's, which is the definition of a data
    race waiting for an unlucky schedule.  The report must contain an
    ``unlocked-access`` finding for any seed.
    """
    runtime = SanitizerRuntime()
    num_pages, d, D = _planted_geometry()
    store = SanitizedStore(MemoryStore(num_pages), runtime)
    dense = DenseSequentialFile(num_pages, d, D, store=store)
    unlocked = ThreadSafeDenseFile(dense, bypass_lock=True)
    keys = random.Random(seed).sample(range(1000), 32)

    def writer() -> None:
        for key in keys:
            unlocked.insert(key)

    def eraser() -> None:
        # Deleting keys the first thread inserted guarantees a write to
        # a page the first thread wrote — a conflicting pair on the
        # same resource for *every* seed, not just lucky key layouts.
        for key in keys[::2]:
            unlocked.delete(key)

    for client in (writer, eraser):
        worker = threading.Thread(target=client, daemon=True)
        worker.start()
        worker.join(timeout=30.0)
    return runtime.report()


def planted_abba(seed: int = 0) -> RaceReport:
    """Two locks acquired in opposite orders by two threads.

    No barrier, no timing: the first client takes A then B and exits,
    then the second takes B then A.  Nothing blocks, nothing times
    out — but the acquisition-order graph now contains A→B and B→A,
    and :meth:`~repro.sanitizer.runtime.SanitizerRuntime.report` must
    surface the ``lock-order-cycle``.  (``seed`` only varies the lock
    hold pattern; detection is schedule-independent.)
    """
    runtime = SanitizerRuntime()
    lock_a = SanitizedRWLock(runtime, label="lock-a")
    lock_b = SanitizedRWLock(runtime, label="lock-b")
    repeats = 1 + random.Random(seed).randrange(3)

    def client(first: SanitizedRWLock, second: SanitizedRWLock) -> None:
        for _ in range(repeats):
            with first.write_locked():
                # lint: allow[lock-order] -- deliberate ABBA for the negative control
                with second.write_locked():
                    pass

    for pair in ((lock_a, lock_b), (lock_b, lock_a)):
        worker = threading.Thread(target=client, args=pair, daemon=True)
        worker.start()
        worker.join(timeout=30.0)
    return runtime.report()


@dataclass
class SanitizeSelfTestReport:
    """Outcome of the sanitized clean run plus both planted controls."""

    clean: "StressReport"
    unlocked_write_detected: bool
    abba_detected: bool

    @property
    def ok(self) -> bool:
        return (
            self.clean.ok
            and self.unlocked_write_detected
            and self.abba_detected
        )

    def summary(self) -> str:
        """One line per control, each with its own ok/FAILED mark."""

        def mark(value: bool) -> str:
            return "ok" if value else "FAILED"

        return "\n".join([
            self.clean.summary(),
            f"negative control (planted unlocked write): "
            f"{mark(self.unlocked_write_detected)} — "
            f"empty-lockset access reported",
            f"negative control (planted ABBA acquisition): "
            f"{mark(self.abba_detected)} — lock-order cycle reported",
        ])


def sanitize_self_test(
    seed: int = 0, total_ops: int = 120
) -> SanitizeSelfTestReport:
    """A sanitized clean run (zero findings) plus both planted bugs."""
    from ..concurrent.harness import StressConfig, run_stress

    clean = run_stress(
        StressConfig(seed=seed, total_ops=total_ops, sanitize=True)
    )
    unlocked = planted_unlocked_write(seed)
    abba = planted_abba(seed)
    return SanitizeSelfTestReport(
        clean=clean,
        unlocked_write_detected=any(
            finding.kind == "unlocked-access" for finding in unlocked.findings
        ),
        abba_detected=any(
            finding.kind == "lock-order-cycle" for finding in abba.findings
        ),
    )
