"""Storage backends: the ``PageStore`` protocol and its three implementations.

Every sequential-file structure in this package runs on a
:class:`~repro.storage.pagefile.PageFile`, which owns the *logical* cost
accounting (the paper's page-access bound).  Where the pages physically
live — and what each touch physically costs — is this module's job.  A
:class:`PageStore` materializes pages; the three conforming backends
are:

:class:`MemoryStore`
    Pages live in Python lists, zero-copy.  This is the pure simulator
    the benchmarks run on.
:class:`DiskStore`
    Pages live in the slotted, checksummed OS file of
    :class:`~repro.storage.ondisk.DiskPagedStore` and are either
    written through on every mutation (the durable default) or
    collected in a dirty set for the journaled facade to commit.
:class:`BufferedStore`
    A live write-back LRU cache *decorating* any other backend: page
    gets and puts flow through a :class:`~repro.storage.bufferpool.BufferPool`
    whose faults and write-backs are forwarded to the wrapped store and
    metered through a :class:`~repro.storage.disk.SimulatedDisk`, so
    hit rates and effective physical I/O are measured in the hot path
    rather than replayed from a trace after the fact.

The contract is intentionally small — ``get_page`` / ``put_page`` /
``move_records`` / ``flush`` / ``stats`` plus the uncharged ``peek`` for
in-core bookkeeping — so caching, durability and metering compose as
decorations instead of parallel code paths.

Access discipline (what makes cross-backend parity exact):

* ``peek(n)`` models the *in-core* calibrator data the paper keeps in
  memory: directory maintenance, rank counters and invariant checks use
  it, and it never touches the cache or the physical meters.
* ``get_page(n)`` is one logical read of a page; ``put_page(n)``
  declares that the page handed out by ``get_page``/``peek`` was
  mutated and is one logical write.  ``PageFile`` pairs every
  ``SimulatedDisk`` charge with exactly one such store touch, in the
  same order — which is why a live :class:`BufferedStore` and a
  :func:`~repro.storage.bufferpool.replay` of the recorded access trace
  agree counter for counter (benchmark EXP-A7 asserts this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from ..core.errors import ConfigurationError
from ..records import Record
from .bufferpool import BufferPool, PoolStats
from .cost import CostModel, PAGE_ACCESS_MODEL
from .disk import SimulatedDisk
from .packed import PackedPage
from .page import Page
from .tracing import READ, WRITE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .ondisk import DiskPagedStore

#: Default frame count for :class:`BufferedStore` when none is given.
DEFAULT_CACHE_PAGES = 16

BACKENDS = ("memory", "disk", "buffered")

#: In-core page representations selectable via ``make_store(page_format=)``.
PAGE_CLASSES = {"packed": PackedPage, "object": Page}


@dataclass
class StoreStats:
    """Uniform physical-layer counters kept by every backend."""

    gets: int = 0
    puts: int = 0
    physical_reads: int = 0
    physical_writes: int = 0


def move_between(
    source_page: Page, dest_page: Page, source: int, dest: int, count: int
) -> int:
    """Move up to ``count`` records between two materialized pages.

    Moves the records *nearest to the destination* in key order: when
    ``dest < source`` the lowest-keyed records of the source move and
    are appended above the destination's keys; otherwise the
    highest-keyed records move below the destination's keys.  Shared by
    every backend so SHIFT semantics cannot drift between them.
    Returns the number of records moved.
    """
    if type(source_page) is PackedPage and type(dest_page) is PackedPage:
        # Column slice moves; same validation and result as below.
        if dest < source:
            return source_page.take_lowest_into(dest_page, count)
        return source_page.take_highest_into(dest_page, count)
    if dest < source:
        moved = source_page.take_lowest(count)
        dest_page.extend_high(moved)
    else:
        moved = source_page.take_highest(count)
        dest_page.extend_low(moved)
    return len(moved)


class PageStore:
    """Abstract physical layer under a :class:`~repro.storage.pagefile.PageFile`.

    Concrete backends must implement :meth:`peek`, :meth:`get_page` and
    :meth:`put_page`; the batch operations and lifecycle methods have
    sensible defaults expressed in terms of those three.
    """

    #: Short backend identifier surfaced by :meth:`stats` and the CLI.
    name = "abstract"
    num_pages = 0
    #: Readahead window: how many upcoming pages a sequential scan may
    #: hand to :meth:`prefetch`.  0 (the default) disables readahead;
    #: only caching backends override it.
    readahead = 0

    # -- the protocol ---------------------------------------------------

    def peek(self, page_number: int) -> Page:
        """Uncharged access for in-core bookkeeping (never metered)."""
        raise NotImplementedError

    def get_page(self, page_number: int) -> Page:
        """One logical read: materialize the page for inspection/mutation."""
        raise NotImplementedError

    def put_page(self, page_number: int) -> None:
        """One logical write: the page from :meth:`get_page` was mutated."""
        raise NotImplementedError

    def get_page2(self, page_number: int) -> Page:
        """Two consecutive :meth:`get_page` calls on one page, fused.

        The store-side twin of ``SimulatedDisk.read2``: every one-page
        update command touches its page twice (step-1 verification,
        then mutation).  The default delegates so stateful backends
        (cache hit/miss counters, LRU order) observe both touches
        exactly as before; simple backends may override with one
        counter bump.
        """
        self.get_page(page_number)
        return self.get_page(page_number)

    def move_records(self, source: int, dest: int, count: int) -> int:
        """Move up to ``count`` records from ``source`` to ``dest``.

        The default reads the source, mutates both pages and writes
        destination then source — one source read plus two writes, the
        cost the paper charges a SHIFT step.  Returns the number of
        records moved.
        """
        source_page = self.get_page(source)
        dest_page = self.peek(dest)
        moved = move_between(source_page, dest_page, source, dest, count)
        self.put_page(dest)
        self.put_page(source)
        return moved

    def prefetch(self, page_numbers: Iterable[int]) -> int:
        """Hint that ``page_numbers`` are about to be read sequentially.

        Non-caching backends ignore the hint (the default returns 0);
        :class:`BufferedStore` faults up to :attr:`readahead` of them
        into its pool.  Never affects logical page-access accounting —
        the hint is issued by uncharged scan positioning code.  Returns
        the number of pages actually faulted in.
        """
        return 0

    def flush(self) -> int:
        """Push buffered state down to the backing medium; returns pages written."""
        return 0

    def stats(self) -> Dict[str, object]:
        """Physical-layer counters as a flat, printable dictionary."""
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Flush and release any backing resources (idempotent)."""
        self.flush()

    @property
    def closed(self) -> bool:
        return False

    def __enter__(self) -> "PageStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class DelegatingStore(PageStore):
    """A transparent pass-through decorator base over any backend.

    Forwards the whole :class:`PageStore` protocol — including the
    fused :meth:`get_page2` and the batch :meth:`move_records`, so a
    decorator never changes the inner store's touch sequence or its
    counters — plus unknown attributes (``page_class``, ``raw``,
    ``pool``, ...), so stacking a decorator is invisible to callers
    that introspect the stack.  Subclasses override exactly the
    methods they want to observe and delegate the rest; the sanitizer's
    :class:`~repro.sanitizer.instrument.SanitizedStore` is the first
    client.  Decorators whose read path adds no shared mutable state
    should set :attr:`passthrough_reads` so
    :func:`~repro.concurrent.file.reads_are_shareable` descends
    through them.
    """

    name = "delegating"
    #: Whether the decorator's read path is free of shared mutable
    #: state, making concurrent readers exactly as safe as they are on
    #: the wrapped store.
    passthrough_reads = False

    def __init__(self, inner: PageStore):
        self.inner = inner
        self.num_pages = inner.num_pages
        self.readahead = inner.readahead

    def __getattr__(self, name: str) -> object:
        # Only consulted for attributes not defined on the decorator.
        return getattr(self.inner, name)

    def peek(self, page_number: int) -> Page:
        return self.inner.peek(page_number)

    def get_page(self, page_number: int) -> Page:
        return self.inner.get_page(page_number)

    def get_page2(self, page_number: int) -> Page:
        return self.inner.get_page2(page_number)

    def put_page(self, page_number: int) -> None:
        self.inner.put_page(page_number)

    def move_records(self, source: int, dest: int, count: int) -> int:
        return self.inner.move_records(source, dest, count)

    def prefetch(self, page_numbers: Iterable[int]) -> int:
        return self.inner.prefetch(page_numbers)

    def flush(self) -> int:
        return self.inner.flush()

    def close(self) -> None:
        self.inner.close()

    @property
    def closed(self) -> bool:
        return self.inner.closed

    def stats(self) -> Dict[str, object]:
        return self.inner.stats()


class MemoryStore(PageStore):
    """Zero-copy in-memory backend: the behaviour the simulator always had."""

    name = "memory"

    def __init__(self, num_pages: int, page_class: type = PackedPage):
        if num_pages < 1:
            raise ConfigurationError("a page store needs at least one page")
        self.num_pages = num_pages
        self.page_class = page_class
        self._pages: List[Page] = [page_class() for _ in range(num_pages + 1)]
        self._stats = StoreStats()

    def peek(self, page_number: int) -> Page:
        return self._pages[page_number]

    def get_page(self, page_number: int) -> Page:
        self._stats.gets += 1
        return self._pages[page_number]

    def get_page2(self, page_number: int) -> Page:
        # get_page has no side effect beyond the counter, so the fused
        # double touch is one bump of two.
        self._stats.gets += 2
        return self._pages[page_number]

    def put_page(self, page_number: int) -> None:
        self._stats.puts += 1

    def stats(self) -> Dict[str, object]:
        return {
            "backend": self.name,
            "gets": self._stats.gets,
            "puts": self._stats.puts,
        }


class DiskStore(PageStore):
    """Durable backend over the slotted, checksummed on-disk page store.

    Pages stay materialized in memory (they are the authoritative
    copies the engine mutates) and every :meth:`put_page` re-serializes
    the touched page into its file slot — the write-through discipline
    the dense-file algorithms make affordable by bounding how many
    pages one command touches.  With ``write_through=False`` the store
    instead collects touched pages in :attr:`dirty` for a transactional
    caller (the journaled facade) to commit as one atomic batch.
    """

    name = "disk"

    def __init__(
        self,
        raw: "DiskPagedStore",
        write_through: bool = True,
        page_class: type = PackedPage,
    ):
        from .ondisk import DiskPagedStore  # cycle guard

        if not isinstance(raw, DiskPagedStore):
            raise TypeError("DiskStore wraps a DiskPagedStore")
        self.raw = raw
        self.num_pages = raw.num_pages
        self.write_through = write_through
        self.page_class = page_class
        #: Pages touched since the last flush (write-back mode only).
        self.dirty: set = set()
        #: Pages whose slot failed its CRC during a tolerant
        #: :meth:`load` — treated as empty in core and never rewritten.
        self.quarantined: set = set()
        self._pages: List[Page] = [
            page_class() for _ in range(self.num_pages + 1)
        ]
        self._stats = StoreStats()

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        num_pages: int,
        d: int,
        D: int,
        j: int = 0,
        slot_capacity: int = 0,
        overwrite: bool = False,
        write_through: bool = True,
        version: int = 0,
        page_class: type = PackedPage,
    ) -> "DiskStore":
        """Create a fresh on-disk file with empty pages.

        ``version`` picks the on-disk format (0 = the current default);
        version 1 files carry only the generic object codec, version 2
        files carry self-describing packed page images.
        """
        from .ondisk import DiskPagedStore

        raw = DiskPagedStore.create(
            path,
            num_pages=num_pages,
            d=d,
            D=D,
            j=j,
            slot_capacity=slot_capacity,
            overwrite=overwrite,
            version=version,
        )
        return cls(raw, write_through=write_through, page_class=page_class)

    @classmethod
    def open(
        cls,
        path: str,
        write_through: bool = True,
        tolerate_corruption: bool = False,
        page_class: type = PackedPage,
    ) -> "DiskStore":
        """Open an existing file and materialize every stored page.

        With ``tolerate_corruption`` a page whose slot fails its CRC is
        *quarantined* (left empty in core, recorded in
        :attr:`quarantined`) instead of aborting the open — the degraded
        read-only path of :class:`~repro.persistent.PersistentDenseFile`.
        """
        from .ondisk import DiskPagedStore

        raw = DiskPagedStore.open(path)
        store = cls(raw, write_through=write_through, page_class=page_class)
        store.load(tolerate_corruption=tolerate_corruption)
        return store

    def load(self, tolerate_corruption: bool = False) -> int:
        """(Re)materialize pages from disk; returns the record count.

        Recovery work, charged to the physical read counter but never to
        any engine's logical meter: restoring a file is not a command.
        Corrupt slots raise :class:`~repro.storage.ondisk.CorruptPageError`
        unless ``tolerate_corruption`` quarantines them instead.
        """
        from .ondisk import CorruptPageError

        total = 0
        self.quarantined = set()
        for page_number in range(1, self.num_pages + 1):
            self._stats.physical_reads += 1
            page = self._pages[page_number]
            page.clear()
            try:
                records = self.raw.read_page(page_number)
            except CorruptPageError:
                if not tolerate_corruption:
                    raise
                self.quarantined.add(page_number)
                continue
            page.extend_high(records)
            total += len(records)
        return total

    def close(self) -> None:
        if not self.raw.closed:
            self.flush()
            self.raw.close()

    @property
    def closed(self) -> bool:
        return self.raw.closed

    @property
    def path(self) -> str:
        return self.raw.path

    # -- the protocol ---------------------------------------------------

    def peek(self, page_number: int) -> Page:
        return self._pages[page_number]

    def get_page(self, page_number: int) -> Page:
        self._stats.gets += 1
        return self._pages[page_number]

    def put_page(self, page_number: int) -> None:
        self._stats.puts += 1
        if self.write_through:
            # One serialization pass straight off the page columns; no
            # intermediate record-list copy on version-2 files.
            self.raw.write_page_image(page_number, self._pages[page_number])
            self._stats.physical_writes += 1
        else:
            self.dirty.add(page_number)

    def flush(self) -> int:
        """Write back dirty pages (write-back mode), then fsync."""
        written = 0
        for page_number in sorted(self.dirty):
            self.raw.write_page_image(page_number, self._pages[page_number])
            self._stats.physical_writes += 1
            written += 1
        self.dirty.clear()
        self.raw.flush()
        return written

    def stats(self) -> Dict[str, object]:
        return {
            "backend": self.name,
            "path": self.raw.path,
            "gets": self._stats.gets,
            "puts": self._stats.puts,
            "physical_reads": self._stats.physical_reads,
            "physical_writes": self._stats.physical_writes,
            "quarantined": sorted(self.quarantined),
        }


class BufferedStore(PageStore):
    """A live write-back LRU cache wrapped around any other backend.

    Every logical touch flows through a
    :class:`~repro.storage.bufferpool.BufferPool`: hits cost nothing
    physical; a miss faults the page in (one physical read, possibly one
    write-back of a dirty victim); ``flush`` pushes every dirty frame
    down to the wrapped store.  Physical traffic is additionally charged
    to a :class:`~repro.storage.disk.SimulatedDisk` so the arm-aware
    cost model prices the cache's residual I/O.

    This is the :class:`~repro.storage.bufferpool.BufferPool` promoted
    from trace-replay simulator to the hot path: the same class keeps
    the frame bookkeeping, so live counters and replayed counters agree
    exactly on identical access sequences.
    """

    name = "buffered"

    def __init__(
        self,
        inner: PageStore,
        capacity: int = DEFAULT_CACHE_PAGES,
        model: CostModel = PAGE_ACCESS_MODEL,
        physical_disk: Optional[SimulatedDisk] = None,
        readahead: int = 0,
    ):
        if readahead < 0:
            raise ConfigurationError("readahead must be >= 0")
        self.inner = inner
        self.num_pages = inner.num_pages
        self.readahead = readahead
        self.physical = (
            physical_disk
            if physical_disk is not None
            else SimulatedDisk(inner.num_pages, model)
        )
        self.pool = BufferPool(
            capacity, on_fault=self._fault, on_writeback=self._writeback
        )

    # -- pool plumbing --------------------------------------------------

    def _fault(self, page_number: int) -> None:
        self.inner.get_page(page_number)
        self.physical.read(page_number)

    def _writeback(self, page_number: int) -> None:
        self.inner.put_page(page_number)
        self.physical.write(page_number)

    # -- the protocol ---------------------------------------------------

    def peek(self, page_number: int) -> Page:
        return self.inner.peek(page_number)

    def get_page(self, page_number: int) -> Page:
        self.pool.access(READ, page_number)
        return self.inner.peek(page_number)

    def put_page(self, page_number: int) -> None:
        self.pool.access(WRITE, page_number)

    def prefetch(self, page_numbers: Iterable[int]) -> int:
        """Fault up to :attr:`readahead` upcoming pages into the pool.

        Sequential scans hand the next pages they will read; each is
        brought in as a clean, not-yet-used frame (one physical read)
        so the demand read that follows is a hit.  Capped by the
        configured readahead window; 0 disables the whole path.
        """
        if not self.readahead:
            return 0
        faulted = 0
        for page_number in list(page_numbers)[: self.readahead]:
            if 1 <= page_number <= self.num_pages:
                if self.pool.prefetch(page_number):
                    faulted += 1
        return faulted

    def move_records(self, source: int, dest: int, count: int) -> int:
        # Same touch sequence the logical meter records (read source,
        # write dest, write source), intercepted so the inner store only
        # sees traffic on faults and write-backs.
        self.pool.access(READ, source)
        moved = move_between(
            self.inner.peek(source), self.inner.peek(dest), source, dest, count
        )
        self.pool.access(WRITE, dest)
        self.pool.access(WRITE, source)
        return moved

    def flush(self) -> int:
        written = self.pool.flush()
        self.inner.flush()
        return written

    def close(self) -> None:
        if not self.closed:
            self.flush()
            self.inner.close()

    @property
    def closed(self) -> bool:
        return self.inner.closed

    @property
    def pool_stats(self) -> PoolStats:
        """The live :class:`~repro.storage.bufferpool.PoolStats` counters."""
        return self.pool.stats

    def stats(self) -> Dict[str, object]:
        pool = self.pool.stats
        return {
            "backend": self.name,
            "capacity": pool.capacity,
            "hits": pool.hits,
            "misses": pool.misses,
            "hit_rate": pool.hit_rate,
            "evictions": pool.evictions,
            "readahead": self.readahead,
            "prefetches": pool.prefetches,
            "prefetch_hits": pool.prefetch_hits,
            "physical_reads": pool.physical_reads,
            "physical_writes": pool.physical_writes,
            "physical_cost": self.physical.stats.cost,
            "inner": self.inner.stats(),
        }


def make_store(
    backend: str,
    num_pages: int,
    d: int = 0,
    D: int = 0,
    j: int = 0,
    path: Optional[str] = None,
    cache_pages: Optional[int] = None,
    slot_capacity: int = 0,
    overwrite: bool = False,
    model: CostModel = PAGE_ACCESS_MODEL,
    readahead: int = 0,
    page_format: str = "packed",
) -> PageStore:
    """Build a backend from a ``"memory" | "disk" | "buffered"`` spec.

    ``"buffered"`` wraps a :class:`DiskStore` when ``path`` is given and
    a :class:`MemoryStore` otherwise; ``cache_pages`` sizes its frame
    pool and ``readahead`` its scan-prefetch window.  ``"disk"``
    requires ``path`` and creates a fresh file (pass ``overwrite=True``
    to clobber); opening an existing file goes through
    :meth:`DiskStore.open` or the persistent facade.

    ``page_format`` picks the in-core page representation: ``"packed"``
    (the default) uses the columnar
    :class:`~repro.storage.packed.PackedPage`; ``"object"`` uses the
    record-list :class:`~repro.storage.page.Page`.  Behaviour and
    logical accounting are identical either way — the knob exists for
    the parity suite and A/B benchmarks.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; pick one of {BACKENDS}"
        )
    if page_format not in PAGE_CLASSES:
        raise ConfigurationError(
            f"unknown page format {page_format!r}; "
            f"pick one of {tuple(PAGE_CLASSES)}"
        )
    page_class = PAGE_CLASSES[page_format]
    if backend == "memory":
        return MemoryStore(num_pages, page_class=page_class)
    if backend == "disk" or path is not None:
        if path is None:
            raise ConfigurationError(
                "the disk backend needs a path for its backing file"
            )
        inner: PageStore = DiskStore.create(
            path,
            num_pages=num_pages,
            d=d,
            D=D,
            j=j,
            slot_capacity=slot_capacity,
            overwrite=overwrite,
            page_class=page_class,
        )
    else:
        inner = MemoryStore(num_pages, page_class=page_class)
    if backend == "disk":
        return inner
    return BufferedStore(
        inner,
        capacity=cache_pages or DEFAULT_CACHE_PAGES,
        model=model,
        readahead=readahead,
    )
