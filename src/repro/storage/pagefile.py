"""``M`` consecutive pages of simulated auxiliary memory holding records.

:class:`PageFile` is the *logical* physical layer of every sequential-
file structure in this package.  It numbers pages 1..M as in the paper,
keeps records in global key order across pages, charges every logical
touch to a :class:`~repro.storage.disk.SimulatedDisk`, and maintains a
small in-memory directory (which pages are non-empty and their minimum
keys) standing in for the in-core part of the calibrator.

Where the pages physically live is delegated to a
:class:`~repro.storage.backend.PageStore` backend: in memory
(:class:`~repro.storage.backend.MemoryStore`, the default), written
through to a checksummed OS file
(:class:`~repro.storage.backend.DiskStore`), or behind a live LRU cache
(:class:`~repro.storage.backend.BufferedStore`).  The engines above are
backend-agnostic: the logical cost accounting — the quantity the
paper's theorems bound — is identical for every backend, because each
``SimulatedDisk`` charge below is paired with exactly one store touch
in the same order.

Cost accounting conventions
---------------------------
* ``locate(key)`` resolves the target page through the in-core
  directory (the calibrator machinery the paper keeps in memory) and
  charges one verification read, matching the paper's "use the
  calibrator as a binary search tree ... ``O(log M)`` [time] and
  typically only two or three page accesses" per update.
* Mutating one page charges one read plus one write of that page.
* Moving records between two pages charges a read of the source and a
  write of each of the two touched pages.
* Length/emptiness queries are free: the rank counters live in the
  in-core calibrator.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from ..core.errors import ConfigurationError, RecordNotFoundError, UsageError
from ..records import Record
from .backend import MemoryStore, PageStore
from .cost import CostModel, PAGE_ACCESS_MODEL
from .disk import SimulatedDisk
from .page import Page


class PageFile:
    """The record-bearing pages of one sequential file."""

    def __init__(
        self,
        num_pages: int,
        disk: Optional[SimulatedDisk] = None,
        model: CostModel = PAGE_ACCESS_MODEL,
        store: Optional[PageStore] = None,
    ):
        if num_pages < 1:
            raise ConfigurationError("a page file needs at least one page")
        self.num_pages = num_pages
        self.disk = disk if disk is not None else SimulatedDisk(num_pages, model)
        if self.disk.num_pages < num_pages:
            raise ConfigurationError("disk is smaller than the requested page file")
        self.store = store if store is not None else MemoryStore(num_pages)
        if self.store.num_pages != num_pages:
            raise ConfigurationError(
                f"store has {self.store.num_pages} pages but the page file "
                f"needs {num_pages}"
            )
        # Sorted list of non-empty page numbers; mins[i] matches it 1:1.
        self._nonempty: List[int] = []
        self._mins: List = []

    # ------------------------------------------------------------------
    # in-memory directory maintenance
    # ------------------------------------------------------------------

    def page(self, page_number: int) -> Page:
        """Uncharged view of one page (in-core bookkeeping and checkers)."""
        return self.store.peek(page_number)

    def _directory_update(self, page_number: int) -> None:
        """Re-sync the non-empty directory entry for one page."""
        # Hot path (runs after every page mutation): read the key column
        # directly instead of going through the is_empty/min_key
        # properties — same data, no descriptor calls.
        keys = self.store.peek(page_number)._keys
        nonempty = self._nonempty
        index = bisect.bisect_left(nonempty, page_number)
        present = index < len(nonempty) and nonempty[index] == page_number
        if not keys:
            if present:
                del nonempty[index]
                del self._mins[index]
        elif present:
            self._mins[index] = keys[0]
        else:
            nonempty.insert(index, page_number)
            self._mins.insert(index, keys[0])

    def rebuild_directory(self) -> int:
        """Re-sync the whole directory with the store's contents.

        Recovery path (uncharged): a durable backend materialized its
        pages from disk and the in-core directory must catch up.
        Returns the total number of records found.
        """
        self._nonempty = []
        self._mins = []
        total = 0
        for page_number in range(1, self.num_pages + 1):
            page = self.store.peek(page_number)
            if not page.is_empty:
                self._nonempty.append(page_number)
                self._mins.append(page.min_key)
                total += len(page)
        return total

    # ------------------------------------------------------------------
    # free (in-core) queries
    # ------------------------------------------------------------------

    def page_len(self, page_number: int) -> int:
        """Number of records on ``page_number`` (free: calibrator data)."""
        return len(self.store.peek(page_number))

    def is_empty_page(self, page_number: int) -> bool:
        """Whether ``page_number`` holds no records (free query)."""
        return self.store.peek(page_number).is_empty

    def total_records(self) -> int:
        """Total records across all pages (free query)."""
        return sum(len(self.store.peek(p)) for p in self._nonempty)

    def nonempty_pages(self) -> List[int]:
        """Sorted list of non-empty page numbers (copy)."""
        return list(self._nonempty)

    def occupancies(self) -> List[int]:
        """Record counts for pages 1..M, as a list of length M."""
        return [
            len(self.store.peek(p)) for p in range(1, self.num_pages + 1)
        ]

    def next_nonempty_right(self, page_number: int) -> Optional[int]:
        """Smallest non-empty page strictly greater than ``page_number``."""
        index = bisect.bisect_right(self._nonempty, page_number)
        if index < len(self._nonempty):
            return self._nonempty[index]
        return None

    def next_nonempty_left(self, page_number: int) -> Optional[int]:
        """Largest non-empty page strictly less than ``page_number``."""
        index = bisect.bisect_left(self._nonempty, page_number) - 1
        if index >= 0:
            return self._nonempty[index]
        return None

    # ------------------------------------------------------------------
    # charged physical operations
    # ------------------------------------------------------------------

    def read_page(self, page_number: int) -> List[Record]:
        """Charge one read and return a copy of the page's records."""
        self.disk.read(page_number)
        return self.store.get_page(page_number).records()

    def locate(self, key: Any) -> Optional[int]:
        """Find the page owning ``key`` for an update command.

        Returns the unique non-empty page whose key interval could
        contain ``key`` (the rightmost non-empty page whose minimum key
        is <= ``key``), or the first non-empty page when ``key`` precedes
        every stored key, or ``None`` when the file is empty.

        Cost accounting follows the paper's step 1 ("use the calibrator
        as a binary search tree ... requires O(log M) [time] and
        typically only two or three page accesses"): the binary search
        itself runs over the in-core directory, and one verification
        read of the candidate page is charged.  Together with the
        read+write charged by the subsequent mutation, an update's
        search-and-touch component is the paper's two-or-three accesses.
        """
        page = self.locate_in_core(key)
        if page is not None:
            self.disk.read(page)
            self.store.get_page(page)
        return page

    def locate_in_core(self, key: Any) -> Optional[int]:
        """Like :meth:`locate` but free of page-access charges.

        Scans start here: the page-minimum directory is core-resident
        (it is part of the calibrator machinery the paper keeps in
        memory), so positioning a stream retrieval costs no disk reads.
        Update commands use the charged :meth:`locate` instead, matching
        the paper's step-1 accounting.
        """
        if not self._nonempty:
            return None
        index = bisect.bisect_right(self._mins, key) - 1
        if index < 0:
            return self._nonempty[0]
        return self._nonempty[index]

    def locate_in_core_hinted(
        self, key: Any, hint: Optional[int]
    ) -> Optional[int]:
        """:meth:`locate_in_core` with a previous-destination search hint.

        Batched writes sweep the file in key order, so the destination
        of one record is almost always the destination of the previous
        one; verifying the hint (is ``hint`` still non-empty, does its
        key interval still cover ``key``?) short-circuits the directory
        binary search in that common case.  A stale hint — the page
        emptied, or maintenance moved the boundary — falls back to the
        full search, so the result always equals ``locate_in_core(key)``.
        """
        if hint is not None:
            index = bisect.bisect_left(self._nonempty, hint)
            if (
                index < len(self._nonempty)
                and self._nonempty[index] == hint
                and self._mins[index] <= key
                and (
                    index + 1 == len(self._nonempty)
                    or self._mins[index + 1] > key
                )
            ):
                return hint
        return self.locate_in_core(key)

    def nonempty_in_range(self, lo_key: Any, hi_key: Any) -> List[int]:
        """Non-empty pages whose key interval can intersect ``[lo, hi]``.

        A bisect over the in-core minimum-key directory (free of page
        charges): the result starts at the page owning ``lo_key`` and
        ends before the first page whose minimum exceeds ``hi_key`` —
        exactly the pages a range deletion or count must read, with no
        scan over the pages left of the range.
        """
        if not self._nonempty or hi_key < lo_key:
            return []
        start = bisect.bisect_right(self._mins, lo_key) - 1
        if start < 0:
            start = 0
        end = bisect.bisect_right(self._mins, hi_key)
        return self._nonempty[start:end]

    def get(self, page_number: int, key: Any) -> Optional[Record]:
        """Charge one read; return the record with ``key`` or ``None``."""
        self.disk.read(page_number)
        return self.store.get_page(page_number).get(key)

    def min_record(self) -> Optional[Record]:
        """Smallest-keyed record (one read), or ``None`` when empty."""
        if not self._nonempty:
            return None
        page_number = self._nonempty[0]
        self.disk.read(page_number)
        return self.store.get_page(page_number).records()[0]

    def max_record(self) -> Optional[Record]:
        """Largest-keyed record (one read), or ``None`` when empty."""
        if not self._nonempty:
            return None
        page_number = self._nonempty[-1]
        self.disk.read(page_number)
        return self.store.get_page(page_number).records()[-1]

    def successor(self, key: Any) -> Optional[Record]:
        """Smallest record with key strictly greater than ``key``.

        Charges one read (two when the answer sits on the next page).
        """
        start = self.locate_in_core(key)
        if start is None:
            return None
        index = bisect.bisect_left(self._nonempty, start)
        while index < len(self._nonempty):
            page_number = self._nonempty[index]
            self.disk.read(page_number)
            for record in self.store.get_page(page_number):
                if record.key > key:
                    return record
            index += 1
        return None

    def predecessor(self, key: Any) -> Optional[Record]:
        """Largest record with key strictly less than ``key``.

        Charges one read (two when the answer sits on the previous page).
        """
        start = self.locate_in_core(key)
        if start is None:
            return None
        index = bisect.bisect_left(self._nonempty, start)
        while index >= 0:
            page_number = self._nonempty[index]
            self.disk.read(page_number)
            for record in reversed(
                self.store.get_page(page_number).records()
            ):
                if record.key < key:
                    return record
            index -= 1
        return None

    def insert_record(self, page_number: int, record: Record) -> None:
        """Insert ``record`` into ``page_number`` (one read + one write)."""
        self.insert_kv(page_number, record.key, record.value)

    def insert_kv(self, page_number: int, key: Any, value: Any = None) -> None:
        """:meth:`insert_record` without materializing the Record.

        Identical charges (one read + one write) and identical state;
        on a packed page the record tuple is never built at all.
        """
        self.disk.read(page_number)
        index = self.store.get_page(page_number).insert_kv(key, value)
        self.disk.write(page_number)
        self.store.put_page(page_number)
        if index == 0:
            # Only an insert at position 0 can change the page minimum
            # (or turn an empty page non-empty); anywhere else the
            # directory entry is already correct.
            self._directory_update(page_number)

    def command_insert(self, key: Any, value: Any, empty_page: int) -> int:
        """One update command's step 1 + insert, fused; returns the page.

        Exactly equivalent to ``page = locate(key) or empty_page``
        followed by :meth:`insert_kv` — the same directory bisect, the
        same charges in the same order (locate's verification read, then
        the mutation's read + write), the same store touches — but in
        one call with the directory maintenance inlined.  This is the
        per-command hot path of ``repro bench``; the engines fall back
        to the unfused methods everywhere else.
        """
        disk = self.disk
        store = self.store
        nonempty = self._nonempty
        if nonempty:
            mins = self._mins
            index = bisect.bisect_right(mins, key) - 1
            if index < 0:
                index = 0
            page_number = nonempty[index]
            disk.read2(page_number)  # step-1 verification read + mutation read
            position = store.get_page2(page_number).insert_kv(key, value)
            disk.write(page_number)
            store.put_page(page_number)
            if position == 0:
                # The located page is directory entry ``index``; a
                # front insert just lowers its recorded minimum.
                mins[index] = key
            return page_number
        # Empty file: no locate charge is possible (locate returns None)
        # and the caller's fallback page receives the record.
        disk.read(empty_page)
        store.get_page(empty_page).insert_kv(key, value)
        disk.write(empty_page)
        store.put_page(empty_page)
        nonempty.append(empty_page)
        self._mins.append(key)
        return empty_page

    def command_delete(self, key: Any) -> "Tuple[int, Record]":
        """One update command's step 1 + remove, fused.

        Equivalent to ``locate(key)`` + :meth:`remove_record` — same
        charges, same store touches, same exceptions (including the
        partial charging when the key is missing from the located page:
        the locate read and the mutation read have already been paid
        when :class:`RecordNotFoundError` propagates, and the write is
        not charged, exactly as in the unfused path).  Raises
        ``RecordNotFoundError(key)`` uncharged when the file is empty.
        Returns ``(page_number, record)``.
        """
        nonempty = self._nonempty
        if not nonempty:
            raise RecordNotFoundError(key)
        disk = self.disk
        store = self.store
        mins = self._mins
        index = bisect.bisect_right(mins, key) - 1
        if index < 0:
            index = 0
        page_number = nonempty[index]
        disk.read2(page_number)  # step-1 verification read + mutation read
        page = store.get_page2(page_number)
        record = page.remove(key)
        disk.write(page_number)
        store.put_page(page_number)
        keys = page._keys
        if not keys:
            del nonempty[index]
            del mins[index]
        elif mins[index] != keys[0]:
            mins[index] = keys[0]
        return page_number, record

    # -- batched-write fast path ---------------------------------------
    #
    # A sorted batch destined for one page pays its read and write once
    # per touched page instead of once per record: the engine opens the
    # page with ``group_read``, applies each record through
    # ``group_insert`` (uncharged — the caller owns the group's
    # charges), and closes it with ``group_write``.  The per-record
    # maintenance algorithm still runs between group inserts; any page
    # I/O *it* performs is charged normally through the methods above,
    # so the coalescing never hides algorithmic work.

    def group_read(self, page_number: int) -> None:
        """Open a batch group on ``page_number`` (one read charge)."""
        self.disk.read(page_number)
        self.store.get_page(page_number)

    def group_insert(self, page_number: int, record: Record) -> None:
        """Insert into a page opened by :meth:`group_read` (uncharged)."""
        self.store.peek(page_number).insert(record)
        self._directory_update(page_number)

    def group_insert_kv(
        self, page_number: int, key: Any, value: Any = None
    ) -> None:
        """:meth:`group_insert` without materializing the Record."""
        index = self.store.peek(page_number).insert_kv(key, value)
        if index == 0:
            self._directory_update(page_number)

    def group_write(self, page_number: int) -> None:
        """Close a batch group on ``page_number`` (one write charge)."""
        self.disk.write(page_number)
        self.store.put_page(page_number)

    def remove_record(self, page_number: int, key: Any) -> Record:
        """Remove ``key`` from ``page_number`` (one read + one write)."""
        self.disk.read(page_number)
        page = self.store.get_page(page_number)
        record = page.remove(key)
        self.disk.write(page_number)
        self.store.put_page(page_number)
        keys = page._keys
        if not keys or key < keys[0]:
            # Only removing the page minimum (or emptying the page)
            # invalidates the directory entry.
            self._directory_update(page_number)
        return record

    def remove_keys(self, page_number: int, keys: Iterable[Any]) -> int:
        """Remove several keys from one already-read page (one write).

        Bulk-deletion helper: the caller has just paid the read via
        :meth:`read_page`, so only the single write-back is charged
        here.  Returns the number of records removed.
        """
        page = self.store.peek(page_number)
        removed = 0
        for key in keys:
            page.remove(key)
            removed += 1
        self.disk.write(page_number)
        self.store.put_page(page_number)
        self._directory_update(page_number)
        return removed

    def replace_record(self, page_number: int, record: Record) -> Record:
        """Replace the record with ``record.key`` in place."""
        self.disk.read(page_number)
        old = self.store.get_page(page_number).replace(record)
        self.disk.write(page_number)
        self.store.put_page(page_number)
        return old

    def move_records(self, source: int, dest: int, count: int) -> int:
        """Move up to ``count`` records from page ``source`` to ``dest``.

        Moves the records *nearest to the destination* in key order: when
        ``dest < source`` the lowest-keyed records of the source move and
        are appended above the destination's keys; when ``dest > source``
        the highest-keyed records move below the destination's keys.
        Requires that no records sit on pages strictly between the two
        (otherwise sequential order would break); the caller (SHIFT)
        guarantees this.  Returns the number of records actually moved.

        Charges one read of the source and one write of each page.
        """
        if source == dest:
            raise UsageError("source and dest must differ")
        if count <= 0:
            return 0
        self.disk.move_charge(source, dest)
        moved = self.store.move_records(source, dest, count)
        self._directory_update(source)
        self._directory_update(dest)
        return moved

    def redistribute(self, lo_page: int, hi_page: int) -> int:
        """Spread all records in pages ``[lo_page, hi_page]`` evenly.

        This is CONTROL 1's rebalancing primitive: after the call every
        page in the range holds either ``floor(n/m)`` or ``ceil(n/m)``
        records (``n`` records over ``m`` pages), with the surplus placed
        on the leftmost pages, preserving key order.  Charges one read
        and one write per page in the range and returns the number of
        pages touched.
        """
        if lo_page > hi_page:
            raise UsageError("empty page range")
        gathered: List[Record] = []
        for page_number in range(lo_page, hi_page + 1):
            self.disk.read(page_number)
            gathered.extend(self.store.get_page(page_number).clear())
        span = hi_page - lo_page + 1
        base, surplus = divmod(len(gathered), span)
        cursor = 0
        for offset in range(span):
            page_number = lo_page + offset
            take = base + (1 if offset < surplus else 0)
            chunk = gathered[cursor : cursor + take]
            cursor += take
            self.store.peek(page_number).extend_high(chunk)
            self.disk.write(page_number)
            self.store.put_page(page_number)
            self._directory_update(page_number)
        return span

    def load_page(self, page_number: int, records: List[Record]) -> None:
        """Overwrite one page's contents (bulk loading; one write)."""
        page = self.store.peek(page_number)
        page.clear()
        page.extend_high(sorted(records, key=lambda record: record.key))
        self.disk.write(page_number)
        self.store.put_page(page_number)
        self._directory_update(page_number)

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------

    def _readahead_hint(self, index: int) -> None:
        """Hand the next upcoming non-empty pages to the store's prefetcher.

        Uncharged scan positioning: the page numbers come from the
        in-core directory, and backends without a readahead window
        (``store.readahead == 0``, the default) never see the call —
        logical page-access accounting is identical with and without
        readahead.
        """
        window = getattr(self.store, "readahead", 0)
        if window:
            self.store.prefetch(self._nonempty[index + 1 : index + 1 + window])

    def scan_range(self, lo_key: Any, hi_key: Any) -> Iterator[Record]:
        """Yield records with ``lo_key <= key <= hi_key`` in key order.

        Charges one read per page touched; pages are touched in
        ascending order so the accesses form one sequential sweep (and,
        on a readahead-enabled store, the upcoming pages are prefetched
        while the current one is consumed).
        """
        start = self.locate_in_core(lo_key)
        if start is None:
            return
        index = bisect.bisect_left(self._nonempty, start)
        while index < len(self._nonempty):
            page_number = self._nonempty[index]
            if self._mins[index] > hi_key:
                return
            self.disk.read(page_number)
            page = self.store.get_page(page_number)
            self._readahead_hint(index)
            for record in page:
                if record.key < lo_key:
                    continue
                if record.key > hi_key:
                    return
                yield record
            index += 1

    def scan_count(self, start_key: Any, count: int) -> List[Record]:
        """Return up to ``count`` records with key >= ``start_key``."""
        result: List[Record] = []
        start = self.locate_in_core(start_key)
        if start is None or count <= 0:
            return result
        index = bisect.bisect_left(self._nonempty, start)
        while index < len(self._nonempty) and len(result) < count:
            page_number = self._nonempty[index]
            self.disk.read(page_number)
            page = self.store.get_page(page_number)
            self._readahead_hint(index)
            for record in page:
                if record.key >= start_key:
                    result.append(record)
                    if len(result) == count:
                        break
            index += 1
        return result

    def iter_all(self) -> Iterator[Record]:
        """Yield every record in key order, charging reads per page."""
        for index, page_number in enumerate(list(self._nonempty)):
            self.disk.read(page_number)
            page = self.store.get_page(page_number)
            self._readahead_hint(index)
            for record in page:
                yield record

    def snapshot(self) -> List[Tuple[int, List[Record]]]:
        """Uncharged dump of (page, records) for tests and checkers."""
        return [
            (page_number, self.store.peek(page_number).records())
            for page_number in self._nonempty
        ]
