"""Explicit binary encoding of records for the on-disk page format.

A deliberately boring, self-describing, non-executable format (no
pickle): every value is a one-byte type tag followed by a fixed or
length-prefixed payload.  Supported key/value types cover what the
library's API accepts: ``None``, ``bool``, ``int`` (arbitrary
precision), ``float``, ``str``, ``bytes``, ``fractions.Fraction`` (the
adversarial workloads use exact rationals) and tuples of the above.

All integers in the framing are little-endian unsigned 32-bit unless
stated otherwise.
"""

from __future__ import annotations

import struct
from fractions import Fraction
from typing import Any, List, Tuple

from ..records import Record

_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_BYTES = 6
_TAG_FRACTION = 7
_TAG_TUPLE = 8
_TAG_LIST = 9
_TAG_DICT = 10

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
#: Tag byte + u32 header, packed in one call ('<' means no padding, so
#: the five bytes are identical to a tag append plus a length append).
_TAG_U32 = struct.Struct("<BI")

#: The fixed single-byte encodings, precomputed once — the encoder used
#: to allocate a fresh ``bytes([tag])`` object per value.
_NONE_BYTES = bytes([_TAG_NONE])
_FALSE_BYTES = bytes([_TAG_FALSE])
_TRUE_BYTES = bytes([_TAG_TRUE])
_FLOAT_BYTES = bytes([_TAG_FLOAT])
_FRACTION_BYTES = bytes([_TAG_FRACTION])


class CodecError(ValueError):
    """Raised on malformed or unsupported data."""


def _encode_int(number: int, out: List[bytes]) -> None:
    payload = number.to_bytes(
        (number.bit_length() + 8) // 8 or 1, "little", signed=True
    )
    out.append(_TAG_U32.pack(_TAG_INT, len(payload)))
    out.append(payload)


def encode_value(value: Any, out: List[bytes]) -> None:
    """Append the encoding of one value to ``out``."""
    if value is None:
        out.append(_NONE_BYTES)
    elif value is True:
        out.append(_TRUE_BYTES)
    elif value is False:
        out.append(_FALSE_BYTES)
    elif isinstance(value, int):
        _encode_int(value, out)
    elif isinstance(value, float):
        out.append(_FLOAT_BYTES)
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_U32.pack(_TAG_STR, len(raw)))
        out.append(raw)
    elif isinstance(value, bytes):
        out.append(_TAG_U32.pack(_TAG_BYTES, len(value)))
        out.append(value)
    elif isinstance(value, Fraction):
        out.append(_FRACTION_BYTES)
        _encode_int(value.numerator, out)
        _encode_int(value.denominator, out)
    elif isinstance(value, tuple):
        out.append(_TAG_U32.pack(_TAG_TUPLE, len(value)))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, list):
        out.append(_TAG_U32.pack(_TAG_LIST, len(value)))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, dict):
        out.append(_TAG_U32.pack(_TAG_DICT, len(value)))
        for item_key, item_value in value.items():
            encode_value(item_key, out)
            encode_value(item_value, out)
    else:
        raise CodecError(
            f"unsupported type {type(value).__name__}; store one of "
            "None/bool/int/float/str/bytes/Fraction/tuple/list/dict"
        )


def decode_value(buffer: bytes, offset: int) -> Tuple[Any, int]:
    """Decode one value; return ``(value, next_offset)``."""
    if offset >= len(buffer):
        raise CodecError("truncated value")
    tag = buffer[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        (length,) = _U32.unpack_from(buffer, offset)
        offset += 4
        payload = buffer[offset : offset + length]
        if len(payload) != length:
            raise CodecError("truncated int")
        return int.from_bytes(payload, "little", signed=True), offset + length
    if tag == _TAG_FLOAT:
        (value,) = _F64.unpack_from(buffer, offset)
        return value, offset + 8
    if tag in (_TAG_STR, _TAG_BYTES):
        (length,) = _U32.unpack_from(buffer, offset)
        offset += 4
        payload = buffer[offset : offset + length]
        if len(payload) != length:
            raise CodecError("truncated string/bytes")
        if tag == _TAG_STR:
            return payload.decode("utf-8"), offset + length
        return bytes(payload), offset + length
    if tag == _TAG_FRACTION:
        numerator, offset = decode_value(buffer, offset)
        denominator, offset = decode_value(buffer, offset)
        if not isinstance(numerator, int) or not isinstance(denominator, int):
            raise CodecError("malformed fraction")
        return Fraction(numerator, denominator), offset
    if tag in (_TAG_TUPLE, _TAG_LIST):
        (arity,) = _U32.unpack_from(buffer, offset)
        offset += 4
        items = []
        for _ in range(arity):
            item, offset = decode_value(buffer, offset)
            items.append(item)
        if tag == _TAG_TUPLE:
            return tuple(items), offset
        return items, offset
    if tag == _TAG_DICT:
        (arity,) = _U32.unpack_from(buffer, offset)
        offset += 4
        result = {}
        for _ in range(arity):
            item_key, offset = decode_value(buffer, offset)
            item_value, offset = decode_value(buffer, offset)
            result[item_key] = item_value
        return result, offset
    raise CodecError(f"unknown type tag {tag}")


def encode_record(record: Record) -> bytes:
    """Serialize one record (key then value)."""
    out: List[bytes] = []
    encode_value(record.key, out)
    encode_value(record.value, out)
    return b"".join(out)


def decode_record(buffer: bytes, offset: int) -> Tuple[Record, int]:
    """Decode one record; return ``(record, next_offset)``."""
    key, offset = decode_value(buffer, offset)
    value, offset = decode_value(buffer, offset)
    return Record(key, value), offset


def encode_page(records: List[Record]) -> bytes:
    """Serialize a whole page payload (count-prefixed record list)."""
    # One flat chunk list and a single join for the whole page — the
    # per-record encode_record/join round trip doubled the allocations.
    out: List[bytes] = [_U32.pack(len(records))]
    for record in records:
        encode_value(record.key, out)
        encode_value(record.value, out)
    return b"".join(out)


def decode_page(buffer: bytes) -> List[Record]:
    """Deserialize a page payload back into its record list."""
    if len(buffer) < 4:
        raise CodecError("truncated page payload")
    (count,) = _U32.unpack_from(buffer, 0)
    offset = 4
    records: List[Record] = []
    for _ in range(count):
        record, offset = decode_record(buffer, offset)
        records.append(record)
    if offset != len(buffer):
        raise CodecError("trailing garbage after page payload")
    return records
