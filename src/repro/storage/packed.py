"""Packed pages: columnar in-core layout plus binary page images.

Two related pieces live here.

:class:`PackedPage` is the hot-path page representation.  Where the
object :class:`~repro.storage.page.Page` keeps a parallel list of
:class:`~repro.records.Record` NamedTuples next to its key list, a
``PackedPage`` keeps *columns* — one plain list of keys and one of
values — and materializes ``Record`` objects only when a caller actually
asks for them (scans, deletes returning the victim, snapshots).  Every
mutation is a ``bisect`` plus C-level list surgery with no per-record
object allocation, and batch moves between two packed pages
(``take_*_into``) are single slice operations.  The class accepts any
key type the object page accepts — heterogeneous keys (Fractions,
tuples) live in the columns just fine — so behaviour is identical; only
the representation differs.  The Hypothesis parity suite in
``tests/test_packed_parity.py`` holds the two classes state- and
counter-identical.

:func:`encode_page_image` / :func:`decode_page_image` are the binary
serialization used by on-disk format version 2.  A page image is
self-describing via a leading *page-format byte*:

=======  ==========================================================
byte 0   image body
=======  ==========================================================
0        object fallback: the generic tag codec page of
         :mod:`repro.storage.codec`, verbatim
1        packed ``int64`` keys (one 8-byte little-endian slot each)
2        packed ``float64`` keys (IEEE-754 little-endian)
3        packed string keys (fixed-width UTF-8 prefix slots)
=======  ==========================================================

Packed images (formats 1-3) continue ``<BBHI``: format byte, flags
(bit 0 = a values section follows), reserved, record count — then the
key slots, then, when present, ``count`` little-endian u32 value
lengths (``0xFFFFFFFF`` = ``None``) followed by the concatenated value
bytes.  Only ``bytes``/``None`` values are packable; anything else —
like any page whose keys are not homogeneously int64/float64/short-str
— *demotes to the object format for that write* (format byte 0).  The
fallback is chosen per page per write, so a packed page that receives a
``Fraction`` key mid-command simply serializes through the generic
codec on its next write-back; nothing above the codec notices.

None of this touches logical page-access accounting: the format byte
lives inside the page payload, which every layer above the raw store
(journal, replication shipping, scrub repair) already treats as opaque
CRC-framed bytes.
"""

from __future__ import annotations

import struct
import sys
from bisect import bisect_left
from typing import Any, Iterable, Iterator, List, Optional

from ..core.errors import DuplicateKeyError, RecordNotFoundError, UsageError
from ..records import Record
from .codec import CodecError, decode_page, encode_page
from .page import Page

PAGE_FORMAT_OBJECT = 0
PAGE_FORMAT_I64 = 1
PAGE_FORMAT_F64 = 2
PAGE_FORMAT_STR = 3

PAGE_FORMATS = (
    PAGE_FORMAT_OBJECT,
    PAGE_FORMAT_I64,
    PAGE_FORMAT_F64,
    PAGE_FORMAT_STR,
)

#: format byte, flags, reserved, record count
_PACKED_HEADER = struct.Struct("<BBHI")
_FLAG_HAS_VALUES = 0x01
_NONE_LENGTH = 0xFFFFFFFF
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1
#: Maximum UTF-8 length for a fixed-width string key slot (u8 lengths).
_STR_WIDTH_MAX = 255

_LITTLE_ENDIAN = sys.byteorder == "little"


class PackedPage(Page):
    """A :class:`Page` storing key and value columns instead of Records.

    Drop-in behavioural replacement: every public method matches the
    object page (same results, same exceptions), so stores may pick the
    representation per file without anything above noticing.  The
    ``_records`` slot inherited from :class:`Page` stays unset — all
    record-touching methods are overridden to work on the columns.
    """

    __slots__ = ("_values",)

    def __init__(self, records: Optional[Iterable[Record]] = None):
        self._keys = []
        self._values = []
        if records:
            for record in records:
                self.insert(record)

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[Record]:
        return map(Record, self._keys, self._values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PackedPage({len(self._keys)} records)"

    @property
    def is_empty(self) -> bool:
        return not self._keys

    def records(self) -> List[Record]:
        """Materialize the records in key order (a fresh list)."""
        return list(map(Record, self._keys, self._values))

    def get(self, key: Any) -> Optional[Record]:
        keys = self._keys
        index = bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return Record(key, self._values[index])
        return None

    def insert(self, record: Record) -> int:
        return self.insert_kv(record.key, record.value)

    def insert_kv(self, key: Any, value: Any = None) -> int:
        """Insert without materializing a :class:`Record` (hot path).

        Returns the insertion index (0 means the page minimum changed).
        """
        keys = self._keys
        index = bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            raise DuplicateKeyError(key)
        keys.insert(index, key)
        self._values.insert(index, value)
        return index

    def remove(self, key: Any) -> Record:
        keys = self._keys
        index = bisect_left(keys, key)
        if index >= len(keys) or keys[index] != key:
            raise RecordNotFoundError(key)
        del keys[index]
        return Record(key, self._values.pop(index))

    def replace(self, record: Record) -> Record:
        keys = self._keys
        index = bisect_left(keys, record.key)
        if index >= len(keys) or keys[index] != record.key:
            raise RecordNotFoundError(record.key)
        values = self._values
        old = Record(keys[index], values[index])
        values[index] = record.value
        return old

    def take_lowest(self, count: int) -> List[Record]:
        count = min(count, len(self._keys))
        taken = list(map(Record, self._keys[:count], self._values[:count]))
        del self._keys[:count]
        del self._values[:count]
        return taken

    def take_highest(self, count: int) -> List[Record]:
        count = min(count, len(self._keys))
        if count == 0:
            return []
        taken = list(map(Record, self._keys[-count:], self._values[-count:]))
        del self._keys[-count:]
        del self._values[-count:]
        return taken

    def extend_low(self, records: List[Record]) -> None:
        if not records:
            return
        if self._keys and records[-1].key >= self._keys[0]:
            raise UsageError("extend_low would break key order")
        self._keys[:0] = [record.key for record in records]
        self._values[:0] = [record.value for record in records]

    def extend_high(self, records: List[Record]) -> None:
        if not records:
            return
        if self._keys and records[0].key <= self._keys[-1]:
            raise UsageError("extend_high would break key order")
        self._keys.extend(record.key for record in records)
        self._values.extend(record.value for record in records)

    def clear(self) -> List[Record]:
        taken = list(map(Record, self._keys, self._values))
        self._keys = []
        self._values = []
        return taken

    # -- packed-to-packed batch moves (SHIFT fast path) -----------------

    def take_lowest_into(self, dest: "PackedPage", count: int) -> int:
        """Move the ``count`` lowest records onto the top of ``dest``.

        Slice-level equivalent of ``dest.extend_high(self.take_lowest(
        count))`` — same validation, same final state, two C-level slice
        moves and no :class:`Record` materialization.  Returns the
        number of records moved.
        """
        count = min(count, len(self._keys))
        if count == 0:
            return 0
        keys = self._keys[:count]
        if dest._keys and keys[0] <= dest._keys[-1]:
            raise UsageError("extend_high would break key order")
        dest._keys += keys
        dest._values += self._values[:count]
        del self._keys[:count]
        del self._values[:count]
        return count

    def take_highest_into(self, dest: "PackedPage", count: int) -> int:
        """Move the ``count`` highest records under the bottom of ``dest``."""
        count = min(count, len(self._keys))
        if count == 0:
            return 0
        keys = self._keys[-count:]
        if dest._keys and keys[-1] >= dest._keys[0]:
            raise UsageError("extend_low would break key order")
        dest._keys[:0] = keys
        dest._values[:0] = self._values[-count:]
        del self._keys[-count:]
        del self._values[-count:]
        return count


def page_columns(page: Page) -> "tuple[List[Any], List[Any]]":
    """Return ``(keys, values)`` columns for either page representation.

    For a :class:`PackedPage` these are the live columns (do not
    mutate); for an object :class:`Page` they are built from the record
    list.
    """
    if isinstance(page, PackedPage):
        return page._keys, page._values
    records = page.records()
    return [record.key for record in records], [
        record.value for record in records
    ]


# ----------------------------------------------------------------------
# binary page images (on-disk format version 2)
# ----------------------------------------------------------------------


def _pack_keys(keys: List[Any]) -> "Optional[tuple[int, bytes]]":
    """Classify and pack homogeneous keys; ``(format, bytes)`` or ``None``."""
    kind = type(keys[0])
    if kind is int:
        for key in keys:
            if type(key) is not int or not _I64_MIN <= key <= _I64_MAX:
                return None
        if _LITTLE_ENDIAN:
            from array import array

            return PAGE_FORMAT_I64, array("q", keys).tobytes()
        return PAGE_FORMAT_I64, struct.pack(f"<{len(keys)}q", *keys)
    if kind is float:
        for key in keys:
            if type(key) is not float:
                return None
        if _LITTLE_ENDIAN:
            from array import array

            return PAGE_FORMAT_F64, array("d", keys).tobytes()
        return PAGE_FORMAT_F64, struct.pack(f"<{len(keys)}d", *keys)
    if kind is str:
        encoded = []
        for key in keys:
            if type(key) is not str:
                return None
            try:
                raw = key.encode("utf-8")
            except UnicodeEncodeError:
                return None  # lone surrogates etc.: object codec handles
            if len(raw) > _STR_WIDTH_MAX:
                return None
            encoded.append(raw)
        width = max(len(raw) for raw in encoded)
        out = bytearray([width])
        padding = b"\x00" * width
        for raw in encoded:
            out.append(len(raw))
            out += raw
            out += padding[: width - len(raw)]
        return PAGE_FORMAT_STR, bytes(out)
    return None


def _pack_values(values: List[Any]) -> Optional[bytes]:
    """Pack a ``bytes``/``None`` value column; ``b""`` when all ``None``.

    Returns ``None`` when any value is of another type (the page must
    demote to the object codec for this write).
    """
    any_present = False
    for value in values:
        if value is None:
            continue
        if type(value) is not bytes:
            return None
        any_present = True
    if not any_present:
        return b""
    lengths = [
        _NONE_LENGTH if value is None else len(value) for value in values
    ]
    return struct.pack(f"<{len(values)}I", *lengths) + b"".join(
        value for value in values if value is not None
    )


def encode_page_image(page: Page) -> bytes:
    """Serialize one page as a self-describing format-byte image.

    Homogeneous pages (int64 / float64 / short-str keys, bytes-or-None
    values) become one packed buffer copy; anything else falls back to
    the generic tag codec behind format byte 0.  Decoding with
    :func:`decode_page_image` always reproduces the exact records.
    """
    keys, values = page_columns(page)
    if keys:
        packed = _pack_keys(keys)
        if packed is not None:
            value_section = _pack_values(values)
            if value_section is not None:
                page_format, key_section = packed
                flags = _FLAG_HAS_VALUES if value_section else 0
                return (
                    _PACKED_HEADER.pack(page_format, flags, 0, len(keys))
                    + key_section
                    + value_section
                )
    if isinstance(page, PackedPage):
        records = list(map(Record, keys, values))
    else:
        records = page.records()
    return bytes([PAGE_FORMAT_OBJECT]) + encode_page(records)


def encode_records_image(records: List[Record]) -> bytes:
    """:func:`encode_page_image` over a plain record list."""
    staging = PackedPage()
    staging._keys = [record.key for record in records]
    staging._values = [record.value for record in records]
    return encode_page_image(staging)


def _unpack_keys(
    page_format: int, payload: bytes, offset: int, count: int
) -> "tuple[List[Any], int]":
    """Decode a key section; returns ``(keys, next_offset)``."""
    if page_format == PAGE_FORMAT_I64:
        end = offset + 8 * count
        if end > len(payload):
            raise CodecError("truncated packed int64 keys")
        return list(struct.unpack_from(f"<{count}q", payload, offset)), end
    if page_format == PAGE_FORMAT_F64:
        end = offset + 8 * count
        if end > len(payload):
            raise CodecError("truncated packed float64 keys")
        return list(struct.unpack_from(f"<{count}d", payload, offset)), end
    # PAGE_FORMAT_STR: u8 slot width, then count slots of u8 len + width bytes
    if offset >= len(payload):
        raise CodecError("truncated packed string key header")
    width = payload[offset]
    offset += 1
    stride = 1 + width
    end = offset + stride * count
    if end > len(payload):
        raise CodecError("truncated packed string keys")
    keys = []
    view = memoryview(payload)
    for _ in range(count):
        length = payload[offset]
        if length > width:
            raise CodecError("packed string key overflows its slot")
        keys.append(str(view[offset + 1 : offset + 1 + length], "utf-8"))
        offset += stride
    return keys, end


def decode_page_image(payload: bytes) -> List[Record]:
    """Decode a format-byte page image back into its record list."""
    if not payload:
        raise CodecError("empty page image")
    page_format = payload[0]
    if page_format == PAGE_FORMAT_OBJECT:
        return decode_page(payload[1:])
    if page_format not in (PAGE_FORMAT_I64, PAGE_FORMAT_F64, PAGE_FORMAT_STR):
        raise CodecError(f"unknown page format byte {page_format}")
    if len(payload) < _PACKED_HEADER.size:
        raise CodecError("truncated packed page header")
    _, flags, _, count = _PACKED_HEADER.unpack_from(payload, 0)
    offset = _PACKED_HEADER.size
    keys, offset = _unpack_keys(page_format, payload, offset, count)
    if flags & _FLAG_HAS_VALUES:
        end = offset + 4 * count
        if end > len(payload):
            raise CodecError("truncated packed value lengths")
        lengths = struct.unpack_from(f"<{count}I", payload, offset)
        offset = end
        values: List[Any] = []
        for length in lengths:
            if length == _NONE_LENGTH:
                values.append(None)
                continue
            chunk = payload[offset : offset + length]
            if len(chunk) != length:
                raise CodecError("truncated packed value bytes")
            values.append(chunk)
            offset += length
        if offset != len(payload):
            raise CodecError("trailing garbage after packed page image")
        return list(map(Record, keys, values))
    if offset != len(payload):
        raise CodecError("trailing garbage after packed page image")
    return [Record(key) for key in keys]
