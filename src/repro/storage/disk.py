"""A simulated auxiliary-memory device addressed in whole pages.

This is the substrate under every file structure in the repository: the
dense sequential file, the B-tree, the overflow file and the PMA all
charge their page touches to a :class:`SimulatedDisk`.  The disk knows
nothing about records; it only meters accesses through a
:class:`~repro.storage.cost.CostModel`, tracks the simulated arm
position, and optionally records an access trace.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import ConfigurationError
from .cost import AccessStats, CostModel, PAGE_ACCESS_MODEL
from .tracing import READ, WRITE, AccessTrace


class SimulatedDisk:
    """Page-granular access meter with a movable arm.

    Parameters
    ----------
    num_pages:
        Size of the address space; page numbers run from 1 to
        ``num_pages`` inclusive (the paper numbers pages from 1).
        Structures that allocate pages dynamically (the B-tree) may pass
        ``num_pages=0`` and grow the device with :meth:`extend`.
    model:
        The :class:`CostModel` used to price each access.
    trace:
        Optional :class:`AccessTrace`; a disabled trace is created when
        omitted.
    """

    def __init__(
        self,
        num_pages: int,
        model: CostModel = PAGE_ACCESS_MODEL,
        trace: Optional[AccessTrace] = None,
    ):
        if num_pages < 0:
            raise ConfigurationError("num_pages must be non-negative")
        self.num_pages = num_pages
        self.model = model
        self.stats = AccessStats()
        self.trace = trace if trace is not None else AccessTrace()
        self._arm = -1  # -1 = arm parked / position unknown
        # CostModel is frozen; flatten its fields onto the instance so
        # the per-access accounting below costs one attribute hop each.
        self._transfer_cost = model.transfer_cost
        self._seek_base = model.seek_base
        self._seek_per_page = model.seek_per_page
        self._seek_max = model.seek_max
        self._window = model.contiguous_window

    @property
    def arm_position(self) -> int:
        """Page currently under the simulated head (-1 if parked)."""
        return self._arm

    def park(self) -> None:
        """Forget the arm position (next access pays a full base seek)."""
        self._arm = -1

    def extend(self, extra_pages: int) -> int:
        """Grow the address space; return the first newly valid page."""
        if extra_pages <= 0:
            raise ConfigurationError("extra_pages must be positive")
        first_new = self.num_pages + 1
        self.num_pages += extra_pages
        return first_new

    def _check(self, page: int) -> None:
        if not 1 <= page <= self.num_pages:
            raise IndexError(
                f"page {page} out of range [1, {self.num_pages}]"
            )

    def _moved(self, page: int) -> bool:
        if self._arm < 0:
            return True
        return abs(page - self._arm) > self.model.contiguous_window

    def _charge(self, page: int) -> "tuple[float, bool]":
        """Shared inline accounting for one access: ``(cost, moved)``.

        Equivalent to ``model.access_cost`` + ``_moved`` but flattened
        into one pass — read/write sit on the hot path of every logical
        page touch, so the three method calls are folded away.  The
        returned values are byte-identical to the un-flattened pair.
        """
        model = self.model
        arm = self._arm
        if arm < 0:
            return model.transfer_cost + model.seek_base, True
        distance = page - arm
        if distance < 0:
            distance = -distance
        if distance <= model.contiguous_window:
            return model.transfer_cost, False
        seek = model.seek_base + model.seek_per_page * distance
        seek_max = model.seek_max
        if seek_max > 0 and seek > seek_max:
            seek = seek_max
        return model.transfer_cost + seek, True

    def read(self, page: int) -> None:
        """Charge one read of ``page``."""
        if not 1 <= page <= self.num_pages:
            self._check(page)
        stats = self.stats
        stats.reads += 1
        # _charge, inlined: read/write sit on the hot path of every
        # logical page touch, so the model math is folded in here (the
        # resulting meters are byte-identical to the method pair).
        arm = self._arm
        if arm < 0:
            stats.cost += self._transfer_cost + self._seek_base
            stats.seeks += 1
        else:
            distance = page - arm
            if distance < 0:
                distance = -distance
            if distance <= self._window:
                stats.cost += self._transfer_cost
            else:
                seek = self._seek_base + self._seek_per_page * distance
                seek_max = self._seek_max
                if seek_max > 0 and seek > seek_max:
                    seek = seek_max
                stats.cost += self._transfer_cost + seek
                stats.seeks += 1
        if self.trace.enabled:
            self.trace.record(READ, page)
        self._arm = page

    def read2(self, page: int) -> None:
        """Charge two consecutive reads of ``page`` in one call.

        The exact pattern of every one-page update command (the step-1
        verification read followed by the mutation read).  After the
        first access the arm sits on ``page``, so the second read is a
        pure transfer; every meter and trace entry matches two separate
        :meth:`read` calls bit for bit.
        """
        if not 1 <= page <= self.num_pages:
            self._check(page)
        stats = self.stats
        stats.reads += 2
        arm = self._arm
        if arm < 0:
            stats.cost += self._transfer_cost + self._seek_base
            stats.seeks += 1
        else:
            distance = page - arm
            if distance < 0:
                distance = -distance
            if distance <= self._window:
                stats.cost += self._transfer_cost
            else:
                seek = self._seek_base + self._seek_per_page * distance
                seek_max = self._seek_max
                if seek_max > 0 and seek > seek_max:
                    seek = seek_max
                stats.cost += self._transfer_cost + seek
                stats.seeks += 1
        stats.cost += self._transfer_cost  # second read: distance 0
        trace = self.trace
        if trace.enabled:
            trace.record(READ, page)
            trace.record(READ, page)
        self._arm = page

    def move_charge(self, source: int, dest: int) -> None:
        """Charge ``read(source); write(dest); write(source)`` in one call.

        The exact access pattern of a one-hop record move (SHIFT's
        workhorse): read the source, write the moved records into the
        destination, write the shrunk source back.  The two writes sit
        at the same distance ``|dest - source|``, so their seek cost is
        computed once and applied twice; every meter, seek count and
        trace entry matches the three separate calls bit for bit, and
        the arm ends on ``source`` exactly as the unfused sequence
        leaves it.
        """
        if not 1 <= source <= self.num_pages:
            self._check(source)
        if not 1 <= dest <= self.num_pages:
            self._check(dest)
        stats = self.stats
        stats.reads += 1
        stats.writes += 2
        arm = self._arm
        if arm < 0:
            stats.cost += self._transfer_cost + self._seek_base
            stats.seeks += 1
        else:
            distance = source - arm
            if distance < 0:
                distance = -distance
            if distance <= self._window:
                stats.cost += self._transfer_cost
            else:
                seek = self._seek_base + self._seek_per_page * distance
                seek_max = self._seek_max
                if seek_max > 0 and seek > seek_max:
                    seek = seek_max
                stats.cost += self._transfer_cost + seek
                stats.seeks += 1
        distance = dest - source
        if distance < 0:
            distance = -distance
        if distance <= self._window:
            stats.cost += 2 * self._transfer_cost
        else:
            seek = self._seek_base + self._seek_per_page * distance
            seek_max = self._seek_max
            if seek_max > 0 and seek > seek_max:
                seek = seek_max
            stats.cost += 2 * (self._transfer_cost + seek)
            stats.seeks += 2
        trace = self.trace
        if trace.enabled:
            trace.record(READ, source)
            trace.record(WRITE, dest)
            trace.record(WRITE, source)
        self._arm = source

    def write(self, page: int) -> None:
        """Charge one write of ``page``."""
        if not 1 <= page <= self.num_pages:
            self._check(page)
        stats = self.stats
        stats.writes += 1
        # Same inlined accounting as read; see the comment there.
        arm = self._arm
        if arm < 0:
            stats.cost += self._transfer_cost + self._seek_base
            stats.seeks += 1
        else:
            distance = page - arm
            if distance < 0:
                distance = -distance
            if distance <= self._window:
                stats.cost += self._transfer_cost
            else:
                seek = self._seek_base + self._seek_per_page * distance
                seek_max = self._seek_max
                if seek_max > 0 and seek > seek_max:
                    seek = seek_max
                stats.cost += self._transfer_cost + seek
                stats.seeks += 1
        if self.trace.enabled:
            self.trace.record(WRITE, page)
        self._arm = page

    def reset_stats(self) -> None:
        """Zero the meters without moving the arm."""
        self.stats.reset()
        self.trace.clear()
