"""A simulated auxiliary-memory device addressed in whole pages.

This is the substrate under every file structure in the repository: the
dense sequential file, the B-tree, the overflow file and the PMA all
charge their page touches to a :class:`SimulatedDisk`.  The disk knows
nothing about records; it only meters accesses through a
:class:`~repro.storage.cost.CostModel`, tracks the simulated arm
position, and optionally records an access trace.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import ConfigurationError
from .cost import AccessStats, CostModel, PAGE_ACCESS_MODEL
from .tracing import READ, WRITE, AccessTrace


class SimulatedDisk:
    """Page-granular access meter with a movable arm.

    Parameters
    ----------
    num_pages:
        Size of the address space; page numbers run from 1 to
        ``num_pages`` inclusive (the paper numbers pages from 1).
        Structures that allocate pages dynamically (the B-tree) may pass
        ``num_pages=0`` and grow the device with :meth:`extend`.
    model:
        The :class:`CostModel` used to price each access.
    trace:
        Optional :class:`AccessTrace`; a disabled trace is created when
        omitted.
    """

    def __init__(
        self,
        num_pages: int,
        model: CostModel = PAGE_ACCESS_MODEL,
        trace: Optional[AccessTrace] = None,
    ):
        if num_pages < 0:
            raise ConfigurationError("num_pages must be non-negative")
        self.num_pages = num_pages
        self.model = model
        self.stats = AccessStats()
        self.trace = trace if trace is not None else AccessTrace()
        self._arm = -1  # -1 = arm parked / position unknown

    @property
    def arm_position(self) -> int:
        """Page currently under the simulated head (-1 if parked)."""
        return self._arm

    def park(self) -> None:
        """Forget the arm position (next access pays a full base seek)."""
        self._arm = -1

    def extend(self, extra_pages: int) -> int:
        """Grow the address space; return the first newly valid page."""
        if extra_pages <= 0:
            raise ConfigurationError("extra_pages must be positive")
        first_new = self.num_pages + 1
        self.num_pages += extra_pages
        return first_new

    def _check(self, page: int) -> None:
        if not 1 <= page <= self.num_pages:
            raise IndexError(
                f"page {page} out of range [1, {self.num_pages}]"
            )

    def _moved(self, page: int) -> bool:
        if self._arm < 0:
            return True
        return abs(page - self._arm) > self.model.contiguous_window

    def read(self, page: int) -> None:
        """Charge one read of ``page``."""
        self._check(page)
        cost = self.model.access_cost(self._arm, page)
        self.stats.record_read(cost, self._moved(page))
        self.trace.record(READ, page)
        self._arm = page

    def write(self, page: int) -> None:
        """Charge one write of ``page``."""
        self._check(page)
        cost = self.model.access_cost(self._arm, page)
        self.stats.record_write(cost, self._moved(page))
        self.trace.record(WRITE, page)
        self._arm = page

    def reset_stats(self) -> None:
        """Zero the meters without moving the arm."""
        self.stats.reset()
        self.trace.clear()
