"""A write-back LRU buffer pool: live cache core and trace-replay simulator.

Willard remarks that CONTROL 2 "can be programmed to access consecutive
pages in one fell swoop" — its page touches cluster, so even a small
buffer pool absorbs most of them.  :class:`BufferPool` quantifies that
two ways with one implementation:

* **Replay**: record an :class:`~repro.storage.tracing.AccessTrace`
  while running any structure, then :func:`replay` it through pools of
  different capacities to get hit rates and the effective physical I/O
  a cached system would perform.
* **Live**: :class:`~repro.storage.backend.BufferedStore` puts the same
  pool in the hot path, forwarding faults and write-backs to a wrapped
  backend through the ``on_fault`` / ``on_writeback`` hooks.

The pool is a classic write-back LRU: a read miss faults the page in
(one physical read, possibly one write-back of a dirty victim); a write
marks the cached frame dirty; ``flush`` writes every dirty frame.
Because the live store and the replay share this class, their counters
agree exactly on identical access sequences (benchmark EXP-A7 asserts
it).

For stream retrievals the pool additionally supports **readahead**:
:meth:`BufferPool.prefetch` faults a page in speculatively, charged to
separate ``prefetches`` / ``prefetch_hits`` counters so demand hit/miss
ratios stay honest.  :class:`~repro.storage.backend.BufferedStore`
drives it from the sequential-scan hints the page file emits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from ..core.errors import ConfigurationError
from .tracing import AccessEvent, WRITE


@dataclass
class PoolStats:
    """Counters accumulated while replaying a trace."""

    capacity: int = 0
    hits: int = 0
    misses: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    evictions: int = 0
    #: Pages faulted in speculatively by :meth:`BufferPool.prefetch`.
    prefetches: int = 0
    #: Hits that were served from a still-unused prefetched frame.
    prefetch_hits: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    @property
    def physical_io(self) -> int:
        return self.physical_reads + self.physical_writes

    def as_row(self) -> List[object]:
        """Format the counters for ``render_table``."""
        return [
            self.capacity,
            self.accesses,
            f"{self.hit_rate:.3f}",
            self.physical_reads,
            self.physical_writes,
        ]


POOL_STATS_HEADERS = [
    "frames", "accesses", "hit rate", "phys reads", "phys writes",
]


class BufferPool:
    """Write-back LRU pool over page numbers.

    ``on_fault(page)`` fires when a miss faults ``page`` in (one
    physical read) and ``on_writeback(page)`` when a dirty frame is
    written back (eviction or flush).  Both default to ``None`` — pure
    simulation for trace replay; a live caching store wires them to the
    backend it decorates.
    """

    def __init__(
        self,
        capacity: int,
        on_fault: Optional[Callable[[int], None]] = None,
        on_writeback: Optional[Callable[[int], None]] = None,
    ):
        if capacity < 1:
            raise ConfigurationError("a buffer pool needs at least one frame")
        self.capacity = capacity
        self._frames: "OrderedDict[int, bool]" = OrderedDict()  # page -> dirty
        self._prefetched: set = set()  # resident but not yet accessed
        self.stats = PoolStats(capacity=capacity)
        self.on_fault = on_fault
        self.on_writeback = on_writeback

    def access(self, kind: str, page: int) -> bool:
        """Apply one logical access; returns True on a cache hit."""
        frames = self._frames
        if page in frames:
            self.stats.hits += 1
            if page in self._prefetched:
                self.stats.prefetch_hits += 1
                self._prefetched.discard(page)
            dirty = frames.pop(page)
            frames[page] = dirty or kind == WRITE
            return True
        self.stats.misses += 1
        self._evict_if_full()
        # Both read and write misses fault the page in first.
        self.stats.physical_reads += 1
        if self.on_fault is not None:
            self.on_fault(page)
        frames[page] = kind == WRITE
        return False

    def prefetch(self, page: int) -> bool:
        """Speculatively fault ``page`` in without counting a hit or miss.

        Readahead support: the frame is brought in clean and counted
        under ``prefetches`` (one physical read, possibly one write-back
        of a dirty victim) instead of ``misses``, so hit/miss ratios
        keep measuring only the demand accesses the caller issued.  A
        later demand access to the frame counts a normal hit plus one
        ``prefetch_hits``.  Returns True when the page was actually
        faulted in (False if already resident).

        A prefetch that would evict a frame still waiting to be read
        (prefetched but not yet accessed) is declined instead: that
        victim is exactly what the scan cursor needs next, and evicting
        it to make room for a further-ahead page turns readahead into
        thrash whenever the window approaches the pool capacity.
        """
        if page in self._frames:
            return False
        if len(self._frames) >= self.capacity:
            victim = next(iter(self._frames))
            if victim in self._prefetched:
                return False
        self.stats.prefetches += 1
        self._evict_if_full()
        self.stats.physical_reads += 1
        if self.on_fault is not None:
            self.on_fault(page)
        self._frames[page] = False
        self._prefetched.add(page)
        return True

    def _evict_if_full(self) -> None:
        """Make room for one incoming frame (LRU victim, write-back)."""
        if len(self._frames) < self.capacity:
            return
        victim, victim_dirty = self._frames.popitem(last=False)
        self._prefetched.discard(victim)
        self.stats.evictions += 1
        if victim_dirty:
            self.stats.physical_writes += 1
            if self.on_writeback is not None:
                self.on_writeback(victim)

    def flush(self) -> int:
        """Write back every dirty frame; returns the number written."""
        written = 0
        for page, dirty in self._frames.items():
            if dirty:
                written += 1
                if self.on_writeback is not None:
                    self.on_writeback(page)
        self.stats.physical_writes += written
        for page in list(self._frames):
            self._frames[page] = False
        return written

    def resident_pages(self) -> List[int]:
        """Pages currently cached, least-recently-used first."""
        return list(self._frames)


def replay(events: Iterable[AccessEvent], capacity: int) -> PoolStats:
    """Replay a trace through a fresh pool (with a final flush)."""
    pool = BufferPool(capacity)
    for event in events:
        pool.access(event.kind, event.page)
    pool.flush()
    return pool.stats


def miss_curve(
    events: Iterable[AccessEvent], capacities: Iterable[int]
) -> List[PoolStats]:
    """Replay the same trace at several pool sizes."""
    materialized = list(events)
    return [replay(materialized, capacity) for capacity in capacities]
