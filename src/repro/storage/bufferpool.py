"""An LRU buffer-pool simulator for access-trace replay.

Willard remarks that CONTROL 2 "can be programmed to access consecutive
pages in one fell swoop" — its page touches cluster, so even a small
buffer pool absorbs most of them.  This module quantifies that: record
an :class:`~repro.storage.tracing.AccessTrace` while running any
structure, then replay it through :class:`BufferPool` instances of
different capacities to get hit rates and the effective physical I/O a
cached system would perform.

The pool is a classic write-back LRU: a read miss faults the page in
(one physical read, possibly one write-back of a dirty victim); a write
marks the cached frame dirty; ``flush`` writes every dirty frame.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable

from .tracing import AccessEvent, READ, WRITE


@dataclass
class PoolStats:
    """Counters accumulated while replaying a trace."""

    capacity: int = 0
    hits: int = 0
    misses: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    @property
    def physical_io(self) -> int:
        return self.physical_reads + self.physical_writes

    def as_row(self):
        """Format the counters for ``render_table``."""
        return [
            self.capacity,
            self.accesses,
            f"{self.hit_rate:.3f}",
            self.physical_reads,
            self.physical_writes,
        ]


POOL_STATS_HEADERS = [
    "frames", "accesses", "hit rate", "phys reads", "phys writes",
]


class BufferPool:
    """Write-back LRU pool over page numbers."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("a buffer pool needs at least one frame")
        self.capacity = capacity
        self._frames: "OrderedDict[int, bool]" = OrderedDict()  # page -> dirty
        self.stats = PoolStats(capacity=capacity)

    def access(self, kind: str, page: int) -> bool:
        """Apply one logical access; returns True on a cache hit."""
        frames = self._frames
        if page in frames:
            self.stats.hits += 1
            dirty = frames.pop(page)
            frames[page] = dirty or kind == WRITE
            return True
        self.stats.misses += 1
        if len(frames) >= self.capacity:
            _, victim_dirty = frames.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.physical_writes += 1
        if kind == READ:
            self.stats.physical_reads += 1
            frames[page] = False
        else:
            # A write miss faults the page in, then dirties it.
            self.stats.physical_reads += 1
            frames[page] = True
        return False

    def flush(self) -> int:
        """Write back every dirty frame; returns the number written."""
        written = 0
        for page, dirty in self._frames.items():
            if dirty:
                written += 1
        self.stats.physical_writes += written
        for page in list(self._frames):
            self._frames[page] = False
        return written

    def resident_pages(self):
        """Pages currently cached, least-recently-used first."""
        return list(self._frames)


def replay(events: Iterable[AccessEvent], capacity: int) -> PoolStats:
    """Replay a trace through a fresh pool (with a final flush)."""
    pool = BufferPool(capacity)
    for event in events:
        pool.access(event.kind, event.page)
    pool.flush()
    return pool.stats


def miss_curve(events, capacities) -> "list[PoolStats]":
    """Replay the same trace at several pool sizes."""
    materialized = list(events)
    return [replay(materialized, capacity) for capacity in capacities]
