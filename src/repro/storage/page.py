"""An in-memory page: a key-sorted slice of a sequential file.

Pages hold :class:`~repro.records.Record` objects sorted by key.  The
capacity ``D`` of the paper is enforced *softly*: the structures above
may let a page transiently exceed ``D`` records within a command, because
the paper's guarantee (``BALANCE(d, D)``) only binds at the end of each
insertion/deletion command.  The invariant checkers assert the hard bound
at those points.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, List, Optional

from ..core.errors import DuplicateKeyError, RecordNotFoundError, UsageError
from ..records import Record


class Page:
    """A sorted, soft-capacity container of records."""

    __slots__ = ("_keys", "_records")

    def __init__(self, records: Optional[Iterable[Record]] = None):
        self._keys: List = []
        self._records: List[Record] = []
        if records:
            for record in records:
                self.insert(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Page({len(self)} records)"

    @property
    def is_empty(self) -> bool:
        return not self._records

    @property
    def min_key(self) -> Any:
        """Smallest key on the page (raises on an empty page)."""
        return self._keys[0]

    @property
    def max_key(self) -> Any:
        """Largest key on the page (raises on an empty page)."""
        return self._keys[-1]

    def records(self) -> List[Record]:
        """Return a copy of the records in key order."""
        return list(self._records)

    def contains(self, key: Any) -> bool:
        """Whether a record with ``key`` is on the page."""
        index = bisect.bisect_left(self._keys, key)
        return index < len(self._keys) and self._keys[index] == key

    def get(self, key: Any) -> Optional[Record]:
        """Return the record with ``key`` or ``None``."""
        index = bisect.bisect_left(self._keys, key)
        if index < len(self._keys) and self._keys[index] == key:
            return self._records[index]
        return None

    def insert(self, record: Record) -> int:
        """Insert ``record`` preserving key order; return its position.

        The returned index lets the page file skip its directory resync
        when the insert did not change the page minimum (index > 0).

        Raises
        ------
        DuplicateKeyError
            If a record with the same key is already on the page.
        """
        index = bisect.bisect_left(self._keys, record.key)
        if index < len(self._keys) and self._keys[index] == record.key:
            raise DuplicateKeyError(record.key)
        self._keys.insert(index, record.key)
        self._records.insert(index, record)
        return index

    def insert_kv(self, key: Any, value: Any = None) -> int:
        """Insert a record given as its fields; return its position.

        On the object page this just builds the :class:`Record`; the
        packed page overrides it to skip the tuple entirely, so callers
        on the hot path use this form unconditionally.
        """
        return self.insert(Record(key, value))

    def remove(self, key: Any) -> Record:
        """Remove and return the record with ``key``.

        Raises
        ------
        RecordNotFoundError
            If no record with ``key`` is on the page.
        """
        index = bisect.bisect_left(self._keys, key)
        if index >= len(self._keys) or self._keys[index] != key:
            raise RecordNotFoundError(key)
        del self._keys[index]
        return self._records.pop(index)

    def replace(self, record: Record) -> Record:
        """Swap in ``record`` for the existing record with the same key."""
        index = bisect.bisect_left(self._keys, record.key)
        if index >= len(self._keys) or self._keys[index] != record.key:
            raise RecordNotFoundError(record.key)
        old = self._records[index]
        self._records[index] = record
        return old

    def take_lowest(self, count: int) -> List[Record]:
        """Remove and return the ``count`` lowest-keyed records."""
        count = min(count, len(self._records))
        taken = self._records[:count]
        del self._records[:count]
        del self._keys[:count]
        return taken

    def take_highest(self, count: int) -> List[Record]:
        """Remove and return the ``count`` highest-keyed records."""
        count = min(count, len(self._records))
        if count == 0:
            return []
        taken = self._records[-count:]
        del self._records[-count:]
        del self._keys[-count:]
        return taken

    def extend_low(self, records: List[Record]) -> None:
        """Prepend records whose keys all precede the page's current keys."""
        if not records:
            return
        if self._keys and records[-1].key >= self._keys[0]:
            raise UsageError("extend_low would break key order")
        self._records[:0] = records
        self._keys[:0] = [record.key for record in records]

    def extend_high(self, records: List[Record]) -> None:
        """Append records whose keys all follow the page's current keys."""
        if not records:
            return
        if self._keys and records[0].key <= self._keys[-1]:
            raise UsageError("extend_high would break key order")
        self._records.extend(records)
        self._keys.extend(record.key for record in records)

    def clear(self) -> List[Record]:
        """Remove and return every record on the page."""
        taken = self._records
        self._records = []
        self._keys = []
        return taken
