"""Cost model and counters for simulated auxiliary-memory accesses.

The paper's complexity results are stated in *page accesses*: every read
or write of one page of auxiliary memory counts one unit.  For the
stream-retrieval comparison against B-trees (Sections 4-5 of the paper)
that flat model is not enough, because the whole argument is that a
sequential file pays far less *disk-arm movement* than a B-tree when
consecutive keys are scanned.  :class:`CostModel` therefore charges

``cost(access) = transfer_cost + seek_cost(distance)``

where ``distance`` is how far the simulated arm must travel from the
previously accessed page.  Accessing the next consecutive page costs only
the transfer; a random probe additionally pays ``seek_base`` plus a term
linear in the distance, capped at ``seek_max``.  Setting
``seek_base = seek_per_page = 0`` recovers the paper's pure
page-access-count model, which is the default used by the maintenance
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Parametric access-cost model for a simulated disk.

    Parameters
    ----------
    transfer_cost:
        Cost charged for every page read or written, regardless of arm
        position.  This is the paper's "page access" unit.
    seek_base:
        Fixed cost added whenever the arm must move at all (the page
        accessed is not the page under the head and not adjacent to it).
    seek_per_page:
        Additional cost per page of arm travel distance.
    seek_max:
        Upper bound on the seek component, mimicking a bounded-stroke
        disk arm.  ``0`` means "no cap".
    contiguous_window:
        Accesses within this many pages of the previous access are
        considered part of the same sequential sweep and pay no seek.
        The default of 1 means "the next or previous page is free";
        Willard's remark that CONTROL 2 "accesses consecutive pages in
        one fell swoop" corresponds to this window.
    """

    transfer_cost: float = 1.0
    seek_base: float = 0.0
    seek_per_page: float = 0.0
    seek_max: float = 0.0
    contiguous_window: int = 1

    def seek_cost(self, distance: int) -> float:
        """Return the arm-movement cost of a jump of ``distance`` pages."""
        if distance <= self.contiguous_window:
            return 0.0
        cost = self.seek_base + self.seek_per_page * distance
        if self.seek_max > 0:
            cost = min(cost, self.seek_max)
        return cost

    def access_cost(self, previous_page: int, page: int) -> float:
        """Return the total cost of touching ``page`` after ``previous_page``.

        ``previous_page`` may be ``-1`` to indicate a cold arm, which is
        charged a full base seek (but no distance term).
        """
        if previous_page < 0:
            return self.transfer_cost + self.seek_base
        distance = abs(page - previous_page)
        return self.transfer_cost + self.seek_cost(distance)


#: The paper's cost model: one unit per page access, seeks are free.
PAGE_ACCESS_MODEL = CostModel()

#: A disk-like model used by the stream-retrieval benchmarks.  The exact
#: constants are not from the paper (it reports none); they encode the
#: qualitative regime the paper argues from: a seek costs about an order
#: of magnitude more than a sequential transfer.
DISK_ARM_MODEL = CostModel(
    transfer_cost=1.0,
    seek_base=10.0,
    seek_per_page=0.01,
    seek_max=25.0,
    contiguous_window=1,
)


@dataclass
class AccessStats:
    """Mutable accumulator of access counts and modelled cost.

    One instance is owned by each :class:`~repro.storage.disk.SimulatedDisk`;
    engines expose it through their public ``stats`` attribute.  The
    ``checkpoint``/``delta`` pair lets a caller measure the cost of a
    single operation without resetting global counters.
    """

    reads: int = 0
    writes: int = 0
    seeks: int = 0
    cost: float = 0.0
    _marks: dict = field(default_factory=dict)

    @property
    def page_accesses(self) -> int:
        """Total page accesses (reads plus writes) so far."""
        return self.reads + self.writes

    def record_read(self, cost: float, moved_arm: bool) -> None:
        """Account one read of the given modelled cost."""
        self.reads += 1
        self.cost += cost
        if moved_arm:
            self.seeks += 1

    def record_write(self, cost: float, moved_arm: bool) -> None:
        """Account one write of the given modelled cost."""
        self.writes += 1
        self.cost += cost
        if moved_arm:
            self.seeks += 1

    def checkpoint(self, name: str = "default") -> None:
        """Remember the current counters under ``name``."""
        self._marks[name] = (self.reads, self.writes, self.seeks, self.cost)

    def delta(self, name: str = "default") -> "AccessStats":
        """Return a snapshot of counters accumulated since ``checkpoint``."""
        reads, writes, seeks, cost = self._marks.get(name, (0, 0, 0, 0.0))
        return AccessStats(
            reads=self.reads - reads,
            writes=self.writes - writes,
            seeks=self.seeks - seeks,
            cost=self.cost - cost,
        )

    def reset(self) -> None:
        """Zero every counter and forget all checkpoints."""
        self.reads = 0
        self.writes = 0
        self.seeks = 0
        self.cost = 0.0
        self._marks.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AccessStats(reads={self.reads}, writes={self.writes}, "
            f"seeks={self.seeks}, cost={self.cost:.1f})"
        )
