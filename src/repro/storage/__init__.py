"""Simulated auxiliary-memory substrate: pages, page files, disks, costs.

This subpackage is the "hardware" under every file structure in the
repository.  It implements the paper's cost model (page accesses) plus a
parametric disk-arm model used by the stream-retrieval benchmarks.
"""

from .codec import CodecError, decode_page, encode_page
from .cost import AccessStats, CostModel, DISK_ARM_MODEL, PAGE_ACCESS_MODEL
from .disk import SimulatedDisk
from .ondisk import (
    CorruptPageError,
    DiskPagedStore,
    PageOverflowError,
    StorageError,
    attach_store,
    load_into,
)
from .page import Page
from .pagefile import PageFile
from .tracing import AccessEvent, AccessTrace, READ, WRITE

__all__ = [
    "AccessEvent",
    "AccessStats",
    "AccessTrace",
    "CodecError",
    "CorruptPageError",
    "CostModel",
    "DISK_ARM_MODEL",
    "DiskPagedStore",
    "PAGE_ACCESS_MODEL",
    "Page",
    "PageFile",
    "PageOverflowError",
    "READ",
    "SimulatedDisk",
    "StorageError",
    "WRITE",
    "attach_store",
    "decode_page",
    "encode_page",
    "load_into",
]
