"""Simulated auxiliary-memory substrate: pages, page files, disks, costs.

This subpackage is the "hardware" under every file structure in the
repository.  It implements the paper's cost model (page accesses) plus a
parametric disk-arm model used by the stream-retrieval benchmarks.
"""

from .backend import (
    BACKENDS,
    BufferedStore,
    DEFAULT_CACHE_PAGES,
    DiskStore,
    MemoryStore,
    PageStore,
    StoreStats,
    make_store,
)
from .bufferpool import BufferPool, PoolStats, replay
from .codec import CodecError, decode_page, encode_page
from .cost import AccessStats, CostModel, DISK_ARM_MODEL, PAGE_ACCESS_MODEL
from .disk import SimulatedDisk
from .faults import (
    BackoffPolicy,
    FaultInjector,
    FaultPlan,
    FaultyStore,
    RetryingStore,
    SimulatedCrash,
    fault_tolerant_stack,
)
from .ondisk import (
    CorruptPageError,
    DiskPagedStore,
    PageOverflowError,
    StorageError,
)
from .page import Page
from .pagefile import PageFile
from .scrub import ScrubReport, scrub
from .tracing import AccessEvent, AccessTrace, READ, WRITE

__all__ = [
    "AccessEvent",
    "AccessStats",
    "AccessTrace",
    "BACKENDS",
    "BackoffPolicy",
    "BufferPool",
    "BufferedStore",
    "CodecError",
    "CorruptPageError",
    "CostModel",
    "DEFAULT_CACHE_PAGES",
    "DISK_ARM_MODEL",
    "DiskPagedStore",
    "DiskStore",
    "FaultInjector",
    "FaultPlan",
    "FaultyStore",
    "MemoryStore",
    "PAGE_ACCESS_MODEL",
    "Page",
    "PageFile",
    "PageOverflowError",
    "PageStore",
    "PoolStats",
    "READ",
    "RetryingStore",
    "ScrubReport",
    "SimulatedCrash",
    "SimulatedDisk",
    "StorageError",
    "StoreStats",
    "WRITE",
    "decode_page",
    "encode_page",
    "fault_tolerant_stack",
    "make_store",
    "replay",
    "scrub",
]
