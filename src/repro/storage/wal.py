"""Transaction journal: crash atomicity for multi-page commands.

A single CONTROL 2 command touches several pages (the insert page plus
up to ``J`` SHIFT moves).  Plain write-through persists those pages one
at a time, so a crash *between* the two page writes of one SHIFT could
lose the records in flight.  This module closes that hole with a
classic redo journal:

1. the command runs against memory, collecting the dirty page set;
2. the new images of every dirty page are appended to a side journal
   file, followed by a checksummed **commit marker**, and fsynced;
3. only then are the pages applied to the main store and the journal
   cleared.

On open, a journal with a valid commit marker is replayed (redo is
idempotent); a journal without one is discarded — the main file was
never touched by that transaction, so it still holds the consistent
pre-command state.  Either way the reopened file shows exactly the
state before or after each command, never in between.

:class:`~repro.storage.faults.FaultInjector` (historically defined
here, now part of the unified fault layer in
:mod:`repro.storage.faults` and re-exported for compatibility) lets the
test suite crash the process at *every* physical write of a command and
assert that recovery lands on one of the two legal states.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Dict, Optional

from .faults import FaultInjector, SimulatedCrash  # noqa: F401  (compat)

JOURNAL_MAGIC = b"DSJ1"
ENTRY = struct.Struct("<III")  # page, payload length, crc32
COMMIT = struct.Struct("<4sII")  # marker, entry count, crc of entry crcs
COMMIT_MARKER = b"CMT1"


class TransactionJournal:
    """Append-once redo journal beside the main store file."""

    def __init__(self, path: str, injector: Optional[FaultInjector] = None):
        self.path = path
        self.injector = injector
        #: Committed transactions written since this object was made.
        self.transactions_written = 0
        #: Page images journaled across all transactions.
        self.pages_journaled = 0
        #: Journal payload bytes written (page images only).
        self.bytes_journaled = 0
        #: fsync calls issued (exactly one per committed transaction —
        #: the number group commit reduces by coalescing commands).
        self.fsyncs = 0

    def counters(self) -> dict:
        """Journal activity counters, for stats()/bench reporting."""
        return {
            "transactions": self.transactions_written,
            "pages_journaled": self.pages_journaled,
            "bytes_journaled": self.bytes_journaled,
            "fsyncs": self.fsyncs,
        }

    def _check(self) -> None:
        if self.injector is not None:
            self.injector.check()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def write_transaction(self, pages: Dict[int, bytes]) -> None:
        """Persist one transaction's page images plus a commit marker.

        The injector is consulted once per journal write (header, each
        entry, the commit marker, the fsync), so crash-point sweeps can
        land inside the journal as well as inside the main-store apply
        phase.
        """
        self._check()
        crcs = []
        with open(self.path, "wb") as handle:
            handle.write(JOURNAL_MAGIC)
            for page, payload in sorted(pages.items()):
                self._check()
                crc = zlib.crc32(payload)
                crcs.append(crc)
                handle.write(ENTRY.pack(page, len(payload), crc))
                handle.write(payload)
            self._check()
            trailer_crc = zlib.crc32(
                b"".join(struct.pack("<I", crc) for crc in crcs)
            )
            handle.write(COMMIT.pack(COMMIT_MARKER, len(pages), trailer_crc))
            handle.flush()
            self._check()
            os.fsync(handle.fileno())
        self.transactions_written += 1
        self.pages_journaled += len(pages)
        self.bytes_journaled += sum(len(payload) for payload in pages.values())
        self.fsyncs += 1

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def read_committed(self) -> Optional[Dict[int, bytes]]:
        """Return the page images of a committed journal, else ``None``.

        ``None`` means: no journal, or a torn/uncommitted one — in
        either case the main store holds the pre-command state and the
        journal may simply be discarded.
        """
        if not os.path.exists(self.path):
            return None
        with open(self.path, "rb") as handle:
            raw = handle.read()
        if len(raw) < len(JOURNAL_MAGIC) or raw[:4] != JOURNAL_MAGIC:
            return None
        offset = 4
        pages: Dict[int, bytes] = {}
        crcs = []
        while True:
            remaining = len(raw) - offset
            if remaining >= COMMIT.size:
                marker, count, trailer_crc = COMMIT.unpack_from(raw, offset)
                if marker == COMMIT_MARKER and count == len(pages):
                    expected = zlib.crc32(
                        b"".join(struct.pack("<I", crc) for crc in crcs)
                    )
                    if expected == trailer_crc:
                        return pages
            if remaining < ENTRY.size:
                return None  # torn: ran out before a valid commit marker
            page, length, crc = ENTRY.unpack_from(raw, offset)
            offset += ENTRY.size
            payload = raw[offset : offset + length]
            offset += length
            if len(payload) != length or zlib.crc32(payload) != crc:
                return None  # torn entry
            pages[page] = payload
            crcs.append(crc)

    def clear(self) -> None:
        """Remove the journal (the transaction is fully applied)."""
        if os.path.exists(self.path):
            os.unlink(self.path)

    def exists(self) -> bool:
        """Whether a journal file is currently on disk."""
        return os.path.exists(self.path)
