"""Transaction journal: crash atomicity for multi-page commands.

A single CONTROL 2 command touches several pages (the insert page plus
up to ``J`` SHIFT moves).  Plain write-through persists those pages one
at a time, so a crash *between* the two page writes of one SHIFT could
lose the records in flight.  This module closes that hole with a
classic redo journal:

1. the command runs against memory, collecting the dirty page set;
2. the new images of every dirty page are appended to a side journal
   file, followed by a checksummed **commit marker**, and fsynced;
3. only then are the pages applied to the main store and the journal
   retired.

On open, a journal with a valid commit marker is replayed (redo is
idempotent); a journal without one is discarded — the main file was
never touched by that transaction, so it still holds the consistent
pre-command state.  Either way the reopened file shows exactly the
state before or after each command, never in between.

Version 2 of the on-disk format (magic ``DSJ2``) prepends a 64-bit
**sequence number** (LSN) to the record: transaction ``N`` carries
sequence ``N``, so the journal doubles as a replication log.  Two
things build on that:

* **Tailing** — :meth:`TransactionJournal.subscribe` registers a
  callback that receives each committed :class:`TransactionRecord`
  immediately after its fsync (and before the main-store apply), which
  is what :class:`~repro.replication.JournalShipper` uses to stream
  commits to a replica.  A record that reaches a subscriber is durable;
  a crash before the fsync reaches neither the disk nor the
  subscribers.
* **Applied retention** — after the main store is updated the journal
  is :meth:`mark_applied`-renamed to ``<path>.applied`` instead of
  unlinked.  The rename keeps the clean-shutdown contract (no
  ``.journal`` file after a clean command) while preserving the durable
  sequence across restarts *and* the last transaction's page images as
  a heal source for :func:`~repro.storage.scrub.scrub` (a torn apply
  write can be repaired even though the transaction committed).

Version 1 files (``DSJ1``, no sequence header) are still read; they
report sequence 0.

:class:`~repro.storage.faults.FaultInjector` (historically defined
here, now part of the unified fault layer in
:mod:`repro.storage.faults` and re-exported for compatibility) lets the
test suite crash the process at *every* physical write of a command and
assert that recovery lands on one of the two legal states.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .faults import FaultInjector, SimulatedCrash  # noqa: F401  (compat)
from .ondisk import StorageError

JOURNAL_MAGIC = b"DSJ2"
JOURNAL_MAGIC_V1 = b"DSJ1"
SEQUENCE = struct.Struct("<Q")  # the record's log sequence number
ENTRY = struct.Struct("<III")  # page, payload length, crc32
COMMIT = struct.Struct("<4sII")  # marker, entry count, crc of entry crcs
COMMIT_MARKER = b"CMT1"

#: Suffix of the retained (applied) journal image beside the main file.
APPLIED_SUFFIX = ".applied"


@dataclass(frozen=True)
class TransactionRecord:
    """One committed transaction: its sequence number and page images.

    The unit that travels over a replication transport.  ``encode()``
    produces exactly the bytes a v2 journal file holds for this
    transaction, so a shipped record and the primary's own journal are
    byte-identical and verified by the same CRCs.
    """

    sequence: int
    pages: Dict[int, bytes]

    def encode(self) -> bytes:
        """The record as a self-delimiting, checksummed byte frame."""
        parts: List[bytes] = [JOURNAL_MAGIC, SEQUENCE.pack(self.sequence)]
        crcs: List[int] = []
        for page, payload in sorted(self.pages.items()):
            crc = zlib.crc32(payload)
            crcs.append(crc)
            parts.append(ENTRY.pack(page, len(payload), crc))
            parts.append(payload)
        trailer = zlib.crc32(
            b"".join(struct.pack("<I", crc) for crc in crcs)
        )
        parts.append(COMMIT.pack(COMMIT_MARKER, len(self.pages), trailer))
        return b"".join(parts)

    @classmethod
    def decode(cls, raw: bytes) -> "TransactionRecord":
        """Parse a frame produced by :meth:`encode`.

        Raises :class:`~repro.storage.ondisk.StorageError` when the
        frame is torn or fails any checksum — a transport must surface
        that loudly rather than replay garbage.
        """
        sequence, pages = _parse(raw)
        if pages is None:
            raise StorageError(
                "torn or corrupt transaction record frame "
                f"({len(raw)} bytes, sequence header {sequence})"
            )
        return cls(sequence, pages)


@dataclass(frozen=True)
class JournalState:
    """What the journal files beside a store currently say.

    ``durable_sequence`` is the LSN of the last transaction known to
    have committed (0 when none has).  ``pending`` means a committed
    journal awaits replay (the process died between the journal fsync
    and the main-store apply); ``torn`` means an uncommitted journal
    tail exists and will be discarded by recovery; ``applied_retained``
    means the last applied transaction's images are still on disk as a
    heal source.
    """

    durable_sequence: int
    pending: bool
    torn: bool
    applied_retained: bool

    @property
    def clean(self) -> bool:
        """No recovery work is outstanding."""
        return not self.pending and not self.torn

    def describe(self) -> str:
        """One CLI-ready line: durable LSN plus any outstanding replay."""
        parts = [f"durable LSN {self.durable_sequence}"]
        if self.pending:
            parts.append("committed transaction pending replay")
        if self.torn:
            parts.append("torn (uncommitted) journal to discard")
        if self.clean:
            parts.append(
                "applied image retained"
                if self.applied_retained
                else "no replay pending"
            )
        return ", ".join(parts)


def journal_state(path: str) -> JournalState:
    """The :class:`JournalState` for the main store file at ``path``."""
    return TransactionJournal(path + ".journal").state()


def _parse(raw: bytes) -> Tuple[int, Optional[Dict[int, bytes]]]:
    """Parse journal bytes into ``(header sequence, committed pages)``.

    ``pages`` is ``None`` for a torn/uncommitted frame; the header
    sequence is still reported when readable (0 for v1 frames, whose
    format carried no sequence), so recovery can infer the durable LSN
    even from a torn tail.
    """
    if raw[:4] == JOURNAL_MAGIC:
        offset = 4 + SEQUENCE.size
        if len(raw) < offset:
            return 0, None
        sequence = SEQUENCE.unpack_from(raw, 4)[0]
    elif raw[:4] == JOURNAL_MAGIC_V1:
        offset, sequence = 4, 0
    else:
        return 0, None
    pages: Dict[int, bytes] = {}
    crcs: List[int] = []
    while True:
        remaining = len(raw) - offset
        if remaining >= COMMIT.size:
            marker, count, trailer_crc = COMMIT.unpack_from(raw, offset)
            if marker == COMMIT_MARKER and count == len(pages):
                expected = zlib.crc32(
                    b"".join(struct.pack("<I", crc) for crc in crcs)
                )
                if expected == trailer_crc:
                    return sequence, pages
        if remaining < ENTRY.size:
            return sequence, None  # torn: ran out before a valid commit
        page, length, crc = ENTRY.unpack_from(raw, offset)
        offset += ENTRY.size
        payload = raw[offset : offset + length]
        offset += length
        if len(payload) != length or zlib.crc32(payload) != crc:
            return sequence, None  # torn entry
        pages[page] = payload
        crcs.append(crc)


def _read_bytes(path: str) -> Optional[bytes]:
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        return handle.read()


class TransactionJournal:
    """Append-once redo journal (and replication log) beside the store."""

    def __init__(self, path: str, injector: Optional[FaultInjector] = None):
        self.path = path
        self.injector = injector
        #: Committed transactions written since this object was made.
        self.transactions_written = 0
        #: Page images journaled across all transactions.
        self.pages_journaled = 0
        #: Journal payload bytes written (page images only).
        self.bytes_journaled = 0
        #: fsync calls issued (exactly one per committed transaction —
        #: the number group commit reduces by coalescing commands).
        self.fsyncs = 0
        #: Subscribers tailing committed records (fired post-fsync).
        self._subscribers: List[Callable[[TransactionRecord], None]] = []
        #: The durable log sequence number: the LSN of the last
        #: transaction known committed, recovered from the on-disk
        #: journal files at construction and advanced on every commit.
        self.sequence = self._recover_sequence()

    @property
    def applied_path(self) -> str:
        """Where :meth:`mark_applied` retains the last applied image."""
        return self.path + APPLIED_SUFFIX

    def counters(self) -> Dict[str, int]:
        """Journal activity counters, for stats()/bench reporting."""
        return {
            "transactions": self.transactions_written,
            "pages_journaled": self.pages_journaled,
            "bytes_journaled": self.bytes_journaled,
            "fsyncs": self.fsyncs,
            "sequence": self.sequence,
        }

    def _check(self) -> None:
        if self.injector is not None:
            self.injector.check()

    def _recover_sequence(self) -> int:
        """The durable LSN implied by the on-disk journal files.

        A committed pending journal proves its own sequence durable; a
        torn one proves only its predecessor (the writer assigns
        ``previous + 1``, so a torn header at ``N`` means ``N - 1``
        committed).  The retained applied image carries the LSN across
        clean restarts.
        """
        best = 0
        pending = _read_bytes(self.path)
        if pending is not None:
            sequence, pages = _parse(pending)
            best = sequence if pages is not None else max(0, sequence - 1)
        applied = _read_bytes(self.applied_path)
        if applied is not None:
            sequence, pages = _parse(applied)
            if pages is not None:
                best = max(best, sequence)
        return best

    # ------------------------------------------------------------------
    # tailing
    # ------------------------------------------------------------------

    def subscribe(self, callback: Callable[[TransactionRecord], None]) -> None:
        """Tail the journal: ``callback(record)`` after every commit fsync.

        Callbacks run on the committing thread, after the record is
        durable and *before* the main store is touched — so a crash
        either reaches the disk and every subscriber, or neither.
        Callbacks must not raise; a shipper that can fail queues
        internally and retries on the next commit.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TransactionRecord], None]) -> None:
        """Remove a subscriber added by :meth:`subscribe` (idempotent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def write_transaction(
        self,
        pages: Mapping[int, bytes],
        sequence: Optional[int] = None,
    ) -> int:
        """Persist one transaction's page images plus a commit marker.

        Assigns (and returns) the next sequence number; a replica
        replaying shipped records passes the primary's ``sequence``
        explicitly so both logs agree on the LSN.  The injector is
        consulted once per journal write (header, each entry, the
        commit marker, the fsync), so crash-point sweeps can land
        inside the journal as well as inside the main-store apply
        phase.
        """
        assigned = self.sequence + 1 if sequence is None else sequence
        self._check()
        crcs = []
        with open(self.path, "wb") as handle:
            handle.write(JOURNAL_MAGIC)
            handle.write(SEQUENCE.pack(assigned))
            for page, payload in sorted(pages.items()):
                self._check()
                crc = zlib.crc32(payload)
                crcs.append(crc)
                handle.write(ENTRY.pack(page, len(payload), crc))
                handle.write(payload)
            self._check()
            trailer_crc = zlib.crc32(
                b"".join(struct.pack("<I", crc) for crc in crcs)
            )
            handle.write(COMMIT.pack(COMMIT_MARKER, len(pages), trailer_crc))
            handle.flush()
            self._check()
            os.fsync(handle.fileno())
        self.sequence = assigned
        self.transactions_written += 1
        self.pages_journaled += len(pages)
        self.bytes_journaled += sum(len(payload) for payload in pages.values())
        self.fsyncs += 1
        if self._subscribers:
            record = TransactionRecord(assigned, dict(pages))
            for subscriber in tuple(self._subscribers):
                subscriber(record)
        return assigned

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def read_committed(self) -> Optional[Dict[int, bytes]]:
        """Return the page images of a committed journal, else ``None``.

        ``None`` means: no journal, or a torn/uncommitted one — in
        either case the main store holds the pre-command state and the
        journal may simply be discarded.
        """
        raw = _read_bytes(self.path)
        if raw is None:
            return None
        return _parse(raw)[1]

    def read_applied(self) -> Optional[Dict[int, bytes]]:
        """Page images of the retained applied journal, else ``None``.

        These pages are already on the main store (the transaction was
        applied before the rename), so rewriting them is idempotent —
        which is exactly what lets :func:`~repro.storage.scrub.scrub`
        heal a torn or bit-flipped apply write after the fact.
        """
        raw = _read_bytes(self.applied_path)
        if raw is None:
            return None
        return _parse(raw)[1]

    def recover(self) -> Optional[Dict[int, bytes]]:
        """Run recovery on the journal file itself.

        Returns the committed page images to replay (the caller applies
        them to the main store, then calls :meth:`mark_applied`), or
        ``None`` when there is nothing to redo.  A torn journal is
        discarded here, preserving the durable sequence in a
        zero-entry applied stamp so the LSN survives the discard.
        """
        committed = self.read_committed()
        if committed is None and self.exists():
            os.unlink(self.path)
            self._stamp_sequence()
        return committed

    def stamp_applied(self, sequence: int) -> None:
        """Record ``sequence`` as durably applied without page images.

        Used when seeding a replica from a full copy of the primary:
        the copied file already holds every page through ``sequence``,
        so only the LSN needs to be made durable.  Never moves the
        sequence backwards.
        """
        if sequence > self.sequence:
            self.sequence = sequence
        self._stamp_sequence()

    def _stamp_sequence(self) -> None:
        """Persist ``self.sequence`` in the applied slot if nothing newer.

        Written via a temp file + atomic rename so a crash mid-stamp
        leaves either the old applied image or the new stamp, never a
        torn one.
        """
        if self.sequence <= 0:
            return
        current = _read_bytes(self.applied_path)
        if current is not None:
            sequence, pages = _parse(current)
            if pages is not None and sequence >= self.sequence:
                return
        scratch = self.applied_path + ".tmp"
        with open(scratch, "wb") as handle:
            handle.write(TransactionRecord(self.sequence, {}).encode())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, self.applied_path)

    def mark_applied(self) -> None:
        """Retire the pending journal: the transaction is fully applied.

        Atomically renames ``<path>`` to ``<path>.applied`` so that no
        ``.journal`` file remains after a clean command (the contract
        plain opens rely on), while the sequence number and the page
        images stay on disk — the LSN survives restarts and the images
        remain available to heal a torn apply write.
        """
        if os.path.exists(self.path):
            os.replace(self.path, self.applied_path)

    def clear(self) -> None:
        """Remove the pending journal without retaining it.

        Kept for discarding torn journals in tests and tooling;
        production recovery goes through :meth:`recover` /
        :meth:`mark_applied`, which preserve the durable sequence.
        """
        if os.path.exists(self.path):
            os.unlink(self.path)

    def exists(self) -> bool:
        """Whether a pending journal file is currently on disk."""
        return os.path.exists(self.path)

    def state(self) -> JournalState:
        """Durable sequence plus outstanding-recovery flags, from disk."""
        pending = torn = False
        raw = _read_bytes(self.path)
        if raw is not None:
            pages = _parse(raw)[1]
            pending = pages is not None
            torn = pages is None
        return JournalState(
            durable_sequence=self._recover_sequence(),
            pending=pending,
            torn=torn,
            applied_retained=os.path.exists(self.applied_path),
        )
