"""A real on-disk backing store for dense sequential files.

The simulator's :class:`~repro.storage.pagefile.PageFile` meters
hypothetical disk accesses.  This module adds the real thing: a single
OS file laid out as a fixed header followed by ``M`` variable-length
page slots in a slotted region.  :class:`DiskPagedStore` is pure
physical I/O (seek, frame, checksum, read, write); the
:class:`~repro.storage.backend.DiskStore` backend mounts it under any
engine through the ``PageStore`` protocol.

File layout (all integers little-endian):

=======  ========================================================
offset   contents
=======  ========================================================
0        magic ``b"DSF1"``
4        format version (u32)
8        ``M`` — number of pages (u32)
12       ``d`` (u32), 16: ``D`` (u32), 20: ``J`` (u32, 0 = default)
24       page-slot capacity in bytes (u32)
28       reserved (u32)
32       page slot 1, 32 + slot:  page slot 2, ...
=======  ========================================================

Each page slot holds: payload length (u32), CRC32 of the payload
(u32), then the payload (see :mod:`repro.storage.codec`), padded to the
fixed slot capacity.  A payload that outgrows its slot raises
:class:`PageOverflowError` — callers size slots from ``D`` and the
maximum record size they intend to store.

Corruption is detected on read: a slot whose CRC does not match raises
:class:`CorruptPageError` naming the page, which the recovery tests
exercise by flipping bytes on disk.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any, List

from ..core.errors import ReproError
from ..records import Record
from .codec import decode_page, encode_page
from .packed import (
    decode_page_image,
    encode_page_image,
    encode_records_image,
)
from .page import Page

MAGIC = b"DSF1"
#: Default format for newly created files.  Version 1 slots hold the
#: generic tag-codec page body verbatim; version 2 slots hold the
#: self-describing format-byte images of :mod:`repro.storage.packed`
#: (packed binary for homogeneous pages, the same tag codec behind
#: format byte 0 otherwise).  Both versions open and verify; a store
#: keeps serializing in the version its file was created with, so old
#: files stay readable *and* writable.
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)
HEADER = struct.Struct("<4sIIIIIII")  # magic, ver, M, d, D, J, slot, reserved
SLOT_HEADER = struct.Struct("<II")  # payload length, crc32


class StorageError(ReproError):
    """Base class for on-disk storage failures."""


class CorruptPageError(StorageError):
    """A page slot failed its checksum (or the header is malformed)."""


class PageOverflowError(StorageError):
    """A page's encoded payload no longer fits its fixed slot."""


class DiskPagedStore:
    """Fixed-geometry slotted page store over one OS file."""

    def __init__(self, path: str, file_object: Any, num_pages: int, d: int,
                 D: int, j: int, slot_capacity: int,
                 version: int = FORMAT_VERSION):
        if version not in SUPPORTED_VERSIONS:
            raise StorageError(f"unsupported format version {version}")
        self.path = path
        self._file = file_object
        self.num_pages = num_pages
        self.d = d
        self.D = D
        self.j = j
        self.slot_capacity = slot_capacity
        #: On-disk format version; fixed at creation and honoured by
        #: every read *and* write for the life of the file.
        self.version = version
        #: Optional :class:`~repro.storage.faults.FaultInjector` (or full
        #: :class:`~repro.storage.faults.FaultPlan`) consulted before and
        #: during every physical page write: ``check()`` may crash,
        #: ``filter_frame()`` may tear or bit-flip the frame.
        self.fault_injector = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        num_pages: int,
        d: int,
        D: int,
        j: int = 0,
        slot_capacity: int = 0,
        overwrite: bool = False,
        version: int = 0,
    ) -> "DiskPagedStore":
        """Create a fresh store with empty pages.

        ``slot_capacity`` of 0 sizes slots for ``D`` integer-keyed
        records with small payloads (64 bytes per record plus framing);
        pass a larger value for bigger values or exotic keys.
        ``version`` of 0 means the current :data:`FORMAT_VERSION`; pass
        1 explicitly to author a legacy object-codec file.
        """
        if num_pages < 1:
            raise StorageError("num_pages must be positive")
        if version == 0:
            version = FORMAT_VERSION
        if version not in SUPPORTED_VERSIONS:
            raise StorageError(f"unsupported format version {version}")
        if slot_capacity <= 0:
            slot_capacity = SLOT_HEADER.size + 4 + 64 * max(1, D)
        if os.path.exists(path) and not overwrite:
            raise StorageError(f"{path} already exists (pass overwrite=True)")
        file_object = open(path, "w+b")
        file_object.write(
            HEADER.pack(
                MAGIC, version, num_pages, d, D, j, slot_capacity, 0
            )
        )
        empty = encode_page([])
        if version >= 2:
            empty = bytes([0]) + empty  # object format byte 0
        for _ in range(num_pages):
            cls._write_slot_raw(file_object, empty, slot_capacity)
        file_object.flush()
        return cls(
            path, file_object, num_pages, d, D, j, slot_capacity, version
        )

    @classmethod
    def open(cls, path: str) -> "DiskPagedStore":
        """Open an existing store, verifying the header."""
        file_object = open(path, "r+b")
        raw = file_object.read(HEADER.size)
        if len(raw) != HEADER.size:
            file_object.close()
            raise CorruptPageError(f"{path}: truncated header")
        magic, version, num_pages, d, D, j, slot, _ = HEADER.unpack(raw)
        if magic != MAGIC:
            file_object.close()
            raise CorruptPageError(f"{path}: bad magic {magic!r}")
        if version not in SUPPORTED_VERSIONS:
            file_object.close()
            raise StorageError(
                f"{path}: unsupported format version {version}"
            )
        return cls(path, file_object, num_pages, d, D, j, slot, version)

    def close(self) -> None:
        """Flush and close the backing OS file (idempotent)."""
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None

    @property
    def closed(self) -> bool:
        return self._file is None

    def __enter__(self) -> "DiskPagedStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # slot I/O
    # ------------------------------------------------------------------

    def _slot_offset(self, page_number: int) -> int:
        if not 1 <= page_number <= self.num_pages:
            raise IndexError(
                f"page {page_number} out of range [1, {self.num_pages}]"
            )
        return HEADER.size + (page_number - 1) * self.slot_capacity

    @staticmethod
    def _write_slot_raw(file_object: Any, payload: bytes, slot_capacity: int) -> None:
        frame = SLOT_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        if len(frame) > slot_capacity:
            raise PageOverflowError(
                f"page payload of {len(payload)} bytes exceeds the "
                f"{slot_capacity}-byte slot"
            )
        file_object.write(frame + b"\x00" * (slot_capacity - len(frame)))

    def _write_slot(self, page_number: int, payload: bytes) -> None:
        """Frame, (possibly) corrupt, and write one slot image.

        The fault hook is consulted twice: ``check()`` may raise a
        simulated crash *before* anything is written, and
        ``filter_frame()`` may hand back a torn or bit-flipped frame —
        always after the CRC was computed over the intended payload, so
        any corruption is caught by the next read's checksum.
        """
        if self.closed:
            raise StorageError("store is closed")
        hook = self.fault_injector
        if hook is not None:
            hook.check()
        frame = SLOT_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        if len(frame) > self.slot_capacity:
            raise PageOverflowError(
                f"page payload of {len(payload)} bytes exceeds the "
                f"{self.slot_capacity}-byte slot"
            )
        if hook is not None:
            filter_frame = getattr(hook, "filter_frame", None)
            if filter_frame is not None:
                frame = filter_frame(page_number, frame)
        self._file.seek(self._slot_offset(page_number))
        self._file.write(frame + b"\x00" * (self.slot_capacity - len(frame)))

    def encode_page_image(self, page: Page) -> bytes:
        """Serialize one materialized page in this file's format version.

        Version 2 emits the self-describing format-byte image (one
        buffer copy for packed-eligible pages); version 1 emits the
        legacy tag-codec body so old files keep their encoding on
        rewrite.
        """
        if self.version >= 2:
            return encode_page_image(page)
        return encode_page(page.records())

    def encode_records_image(self, records: List[Record]) -> bytes:
        """:meth:`encode_page_image` over a plain record list."""
        if self.version >= 2:
            return encode_records_image(records)
        return encode_page(records)

    def write_page(self, page_number: int, records: List[Record]) -> None:
        """Serialize and write-through one page."""
        self._write_slot(page_number, self.encode_records_image(records))

    def write_page_image(self, page_number: int, page: Page) -> None:
        """Serialize and write-through a materialized page (no copy)."""
        self._write_slot(page_number, self.encode_page_image(page))

    def write_page_payload(self, page_number: int, payload: bytes) -> None:
        """Write an already-encoded page image (journal redo path)."""
        self._write_slot(page_number, payload)

    def read_page(self, page_number: int) -> List[Record]:
        """Read and verify one page; raises :class:`CorruptPageError`."""
        if self.closed:
            raise StorageError("store is closed")
        self._file.seek(self._slot_offset(page_number))
        raw = self._file.read(self.slot_capacity)
        if len(raw) < SLOT_HEADER.size:
            raise CorruptPageError(f"page {page_number}: truncated slot")
        length, checksum = SLOT_HEADER.unpack_from(raw, 0)
        payload = raw[SLOT_HEADER.size : SLOT_HEADER.size + length]
        if len(payload) != length:
            raise CorruptPageError(f"page {page_number}: truncated payload")
        if zlib.crc32(payload) != checksum:
            raise CorruptPageError(f"page {page_number}: checksum mismatch")
        if self.version >= 2:
            return decode_page_image(payload)
        return decode_page(payload)

    def flush(self) -> None:
        """Flush and fsync the backing OS file."""
        if not self.closed:
            self._file.flush()
            os.fsync(self._file.fileno())

    def verify_all(self) -> List[int]:
        """Checksum every page; return the list of corrupt page numbers."""
        corrupt = []
        for page_number in range(1, self.num_pages + 1):
            try:
                self.read_page(page_number)
            except Exception:  # lint: allow[errors] -- any decode wreckage means corrupt
                corrupt.append(page_number)
        return corrupt
