"""Access-trace recording for the simulated disk.

A trace is a list of ``(kind, page)`` events.  Traces let tests assert
*which* pages an algorithm touched (not just how many), and let the
analysis layer compute run-length statistics: Willard points out that
CONTROL 2, unlike a B-tree, touches *consecutive* pages during updates,
so its accesses coalesce into long sequential runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

READ = "r"
WRITE = "w"


@dataclass(frozen=True)
class AccessEvent:
    """A single page access: ``kind`` is ``"r"`` or ``"w"``."""

    kind: str
    page: int


class AccessTrace:
    """Bounded in-memory recording of page accesses.

    Recording is off by default because maintenance benchmarks perform
    millions of accesses; call :meth:`enable` (or construct with
    ``enabled=True``) to start collecting.
    """

    def __init__(self, enabled: bool = False, capacity: int = 1_000_000):
        self.enabled = enabled
        self.capacity = capacity
        self._events: List[AccessEvent] = []
        self.dropped = 0

    def record(self, kind: str, page: int) -> None:
        """Append one event if recording is on and capacity remains."""
        if not self.enabled:
            return
        if len(self._events) >= self.capacity:
            self.dropped += 1
            return
        self._events.append(AccessEvent(kind, page))

    def enable(self) -> None:
        """Start recording accesses."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording accesses (events kept)."""
        self.enabled = False

    def clear(self) -> None:
        """Drop every recorded event and reset the drop counter."""
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AccessEvent]:
        return iter(self._events)

    def pages(self) -> List[int]:
        """Return the sequence of page numbers touched, in order."""
        return [event.page for event in self._events]

    def runs(self) -> List[Tuple[int, int]]:
        """Split the trace into maximal sequential runs.

        A run is a maximal subsequence of accesses in which each page is
        within one page of its predecessor (re-touching the same page
        continues the run).  Returns ``(start_page, length)`` pairs where
        ``length`` counts accesses, not distinct pages.
        """
        runs: List[Tuple[int, int]] = []
        start = -1
        previous = None
        length = 0
        for event in self._events:
            if previous is not None and abs(event.page - previous) <= 1:
                length += 1
            else:
                if length:
                    runs.append((start, length))
                start = event.page
                length = 1
            previous = event.page
        if length:
            runs.append((start, length))
        return runs

    def mean_run_length(self) -> float:
        """Average length of the sequential runs (0.0 for an empty trace)."""
        runs = self.runs()
        if not runs:
            return 0.0
        return sum(length for _, length in runs) / len(runs)
