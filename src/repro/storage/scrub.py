"""Offline scrub/repair for durable dense files.

:func:`scrub` is the recovery ladder for a file whose physical layer
can no longer be trusted (a torn write, a bit-flip, a crash mid-apply):

1. **Detect** — checksum every page slot of the
   :class:`~repro.storage.ondisk.DiskPagedStore` and collect the
   corrupt page numbers.
2. **Repair** — if a *committed* transaction journal sits beside the
   file, replay it (redo is idempotent): any damaged page whose image
   was journaled gets its last committed contents back.  The journal is
   then retired exactly as crash recovery would (renamed to the
   ``.applied`` slot, preserving the durable sequence).  Pages still
   corrupt afterwards get a second chance from the *retained applied*
   journal image — the last applied transaction's pages are already on
   the main store, so rewriting them is an idempotent heal for a torn
   or bit-flipped apply write.
3. **Quarantine** — pages still corrupt after both passes have no
   surviving committed image; they are recorded in the report and left untouched
   on disk (no destructive zeroing — the operator may still salvage
   bytes).  Opening the file afterwards requires
   ``PersistentDenseFile.open(path, on_corruption="degrade")``, which
   maps quarantined pages to empty and refuses mutations with
   :class:`~repro.core.errors.ReadOnlyError`.
4. **Verify** — when nothing is quarantined, the file is opened and the
   full structural check runs (sequential order, ``(d, D)``-density,
   ``BALANCE``, calibrator counters, on-disk/in-core agreement); any
   violation is reported rather than raised.

The CLI surfaces this as ``repro scrub FILE`` (exit 0 when the file
ends healthy, 3 when pages stay quarantined or invariants fail).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class ScrubReport:
    """Outcome of one :func:`scrub` pass, in ladder order."""

    path: str
    pages_checked: int = 0
    #: Pages that failed their CRC when the scrub started.
    corrupt: Tuple[int, ...] = ()
    #: Whether a committed journal was found and replayed.
    journal_replayed: bool = False
    #: Corrupt pages healed by the journal redo.
    repaired: Tuple[int, ...] = ()
    #: Corrupt pages healed from the retained applied-journal image.
    healed: Tuple[int, ...] = ()
    #: Pages still corrupt after redo (no committed image survives).
    quarantined: Tuple[int, ...] = ()
    #: Structural-invariant failures found on the repaired file.
    invariant_errors: Tuple[str, ...] = ()
    #: Human-readable ladder trace for the CLI.
    log: List[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """True when every page verifies and every invariant holds."""
        return not self.quarantined and not self.invariant_errors

    @property
    def degraded(self) -> bool:
        """True when the file must be opened in read-only degraded mode."""
        return bool(self.quarantined)

    def summary(self) -> str:
        """Multi-line report for the CLI."""
        lines = list(self.log)
        if self.healthy:
            verdict = "healthy"
            mended = sorted(set(self.repaired) | set(self.healed))
            if mended:
                verdict += f" (repaired pages {mended})"
        elif self.quarantined:
            verdict = (
                f"DEGRADED: pages {list(self.quarantined)} quarantined; "
                "open read-only with on_corruption='degrade' or restore "
                "from backup"
            )
        else:
            verdict = "UNSOUND: structural invariants failed"
        lines.append(f"scrub verdict: {verdict}")
        return "\n".join(lines)


def scrub(path: str) -> ScrubReport:
    """Run the detect/repair/quarantine/verify ladder over ``path``.

    Safe on healthy files (a no-op that reports ``healthy``) and
    idempotent: a second scrub of a degraded file reports the same
    quarantine set.  Must be run on a *closed* file — it opens the
    store exclusively.
    """
    # Imports are local: repro.persistent imports repro.storage, so a
    # module-level import here would be circular.
    from ..core.errors import ReproError
    from .ondisk import DiskPagedStore
    from .wal import TransactionJournal

    report = ScrubReport(path=path)
    with DiskPagedStore.open(path) as raw:
        report.pages_checked = raw.num_pages
        report.corrupt = tuple(raw.verify_all())
        report.log.append(
            f"checked {report.pages_checked} pages: "
            f"{len(report.corrupt)} corrupt"
            + (f" {list(report.corrupt)}" if report.corrupt else "")
        )

        journal = TransactionJournal(path + ".journal")
        had_torn = journal.exists() and journal.read_committed() is None
        committed = journal.recover()
        if committed is not None:
            for page, payload in sorted(committed.items()):
                raw.write_page_payload(page, payload)
            raw.flush()
            journal.mark_applied()
            report.journal_replayed = True
            report.log.append(
                f"replayed committed journal ({len(committed)} page images)"
            )
        elif had_torn:
            report.log.append("discarded torn (uncommitted) journal")

        still_corrupt = (
            tuple(raw.verify_all())
            if report.corrupt or report.journal_replayed
            else ()
        )
        report.repaired = tuple(
            page for page in report.corrupt if page not in still_corrupt
        )
        if report.repaired:
            report.log.append(f"repaired pages {list(report.repaired)}")

        if still_corrupt:
            applied = journal.read_applied()
            if applied:
                healed = []
                for page in still_corrupt:
                    payload = applied.get(page)
                    if payload is not None:
                        raw.write_page_payload(page, payload)
                        healed.append(page)
                if healed:
                    raw.flush()
                    still_corrupt = tuple(raw.verify_all())
                    report.healed = tuple(
                        page for page in healed if page not in still_corrupt
                    )
                    report.log.append(
                        "healed pages "
                        f"{list(report.healed)} from the retained "
                        "applied-journal image"
                    )
        report.quarantined = still_corrupt
        if report.quarantined:
            report.log.append(
                f"quarantined pages {list(report.quarantined)}: no "
                "committed journal image to restore from"
            )

    if not report.quarantined:
        from ..persistent import PersistentDenseFile

        try:
            with PersistentDenseFile.open(path) as dense:
                dense.validate()
            report.log.append(
                "structural pass: order, density, BALANCE, calibrator "
                "counters, on-disk agreement all hold"
            )
        except ReproError as error:
            report.invariant_errors = (str(error),)
            report.log.append(f"structural pass FAILED: {error}")
    return report
