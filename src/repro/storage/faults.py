"""Fault injection and absorption at the ``PageStore`` seam.

The paper's headline is a *worst-case* guarantee, but the physical
layer only honours it on a healthy disk.  This module makes the failure
modes of real storage first-class — and deterministic — so the test
suite can drive a fault into every injection point of every command and
assert the file always lands in a legal state:

:class:`FaultPlan`
    A seeded, reproducible schedule of faults.  It generalizes the old
    ``wal.FaultInjector`` (crash-at-Nth-physical-write) beyond the
    journal to the whole store seam, and adds three more fault kinds:
    transient :class:`~repro.core.errors.TransientIOError` on
    get/put/flush (seeded Bernoulli per operation), **torn writes**
    (only a prefix of the page frame reaches the platter) and **payload
    bit-flips** (silent corruption, caught by the slot CRCs on the next
    read).
:class:`FaultyStore`
    A :class:`~repro.storage.backend.PageStore` decorator that consults
    a plan before every logical operation and installs the plan's
    physical hooks on the :class:`~repro.storage.ondisk.DiskPagedStore`
    at the bottom of the stack (when there is one).  Every fault fires
    *before* the wrapped store is touched, so a faulted operation has
    no side effects and is safe to retry verbatim.
:class:`RetryingStore`
    The absorption side: bounded retries with a deterministic
    exponential :class:`BackoffPolicy` for transient faults, with
    retry/give-up counters in :meth:`~RetryingStore.stats`.  Crashes and
    corruption are *not* retried — those belong to the journal and
    :func:`~repro.storage.scrub.scrub` recovery paths.

Fault taxonomy (who detects it, who heals it):

=============  ======================  ===============================
fault          detected by             healed by
=============  ======================  ===============================
transient      raised synchronously    :class:`RetryingStore` retries
crash          process death           journal redo on reopen
torn write     slot CRC on next read   journal image via ``scrub()``
bit-flip       slot CRC on next read   journal image via ``scrub()``;
                                       else quarantine + read-only mode
=============  ======================  ===============================

A default-constructed :class:`FaultPlan` injects nothing; the decorators
then add no logical page accesses and near-zero overhead (the
``benchmarks/test_fault_overhead.py`` guard asserts both), so the fault
layer can stay installed in production stacks.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar

from ..concurrent.retry import RetryPolicy, retry_call
from ..core.errors import (
    ConfigurationError,
    ReproError,
    TransientIOError,
)
from .backend import DiskStore, PageStore
from .page import Page

_T = TypeVar("_T")

#: Logical operations a :class:`FaultPlan` can fault transiently.
TRANSIENT_OPS = ("get", "put", "flush")


class SimulatedCrash(ReproError):
    """Raised by a :class:`FaultInjector` in place of a power failure."""


class FaultInjector:
    """Counts down physical writes and 'crashes' when exhausted.

    The original crash-only injector of the journal tests, now the base
    of the full :class:`FaultPlan`.  ``wal.FaultInjector`` remains as a
    backwards-compatible alias.
    """

    def __init__(self):
        self.countdown: Optional[int] = None
        self.crashes = 0

    def arm(self, writes_before_crash: int) -> None:
        """Crash on the (n+1)-th physical write from now."""
        self.countdown = writes_before_crash

    def disarm(self) -> None:
        """Stop injecting faults."""
        self.countdown = None

    def check(self) -> None:
        """Called by stores/journals before each physical write."""
        if self.countdown is None:
            return
        if self.countdown <= 0:
            self.crashes += 1
            raise SimulatedCrash("injected crash before a physical write")
        self.countdown -= 1


class FaultPlan(FaultInjector):
    """A deterministic, seeded schedule of storage faults.

    All randomness comes from one ``random.Random(seed)``, so a failing
    schedule replays exactly from its constructor arguments.

    Parameters
    ----------
    seed:
        Seeds the transient Bernoulli draws and the bit-flip position.
    transient_rate:
        Probability that any one logical get/put/flush raises a
        :class:`~repro.core.errors.TransientIOError` (before the wrapped
        store is touched).
    max_transients:
        Cap on injected transients (``None`` = unlimited).  Lets a test
        bound the worst burst a retry policy must survive.
    transient_ops:
        Which logical operations may fault (default: all of
        :data:`TRANSIENT_OPS`).
    crash_after_writes:
        Arm the inherited crash countdown immediately: the plan raises
        :class:`SimulatedCrash` before the (n+1)-th physical write.
    torn_write_at:
        0-based index (among the physical page-frame writes this plan
        observes) of a write that reaches the platter only partially:
        the frame is truncated to its first half, leaving a slot whose
        CRC cannot match.
    bitflip_at:
        0-based physical-write index whose frame gets one bit flipped at
        a seeded position — silent corruption the next read's CRC check
        must catch.
    """

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        max_transients: Optional[int] = None,
        transient_ops: Tuple[str, ...] = TRANSIENT_OPS,
        crash_after_writes: Optional[int] = None,
        torn_write_at: Optional[int] = None,
        bitflip_at: Optional[int] = None,
    ):
        super().__init__()
        if not 0.0 <= transient_rate <= 1.0:
            raise ConfigurationError("transient_rate must be a probability")
        self.seed = seed
        self.transient_rate = transient_rate
        self.max_transients = max_transients
        self.transient_ops = tuple(transient_ops)
        self.torn_write_at = torn_write_at
        self.bitflip_at = bitflip_at
        self._rng = random.Random(seed)
        if crash_after_writes is not None:
            self.arm(crash_after_writes)
        # Observation counters (all injected faults are accounted for).
        self.ops_seen = 0
        self.physical_writes = 0
        self.transients_injected = 0
        self.torn_writes = 0
        self.bitflips = 0
        #: Pages whose on-disk frame this plan corrupted (torn or flip).
        self.corrupted_pages: List[int] = []

    # -- logical seam (consulted by FaultyStore) ------------------------

    @property
    def enabled(self) -> bool:
        """Whether this plan can still inject any fault at all."""
        transients_left = self.transient_rate > 0.0 and (
            self.max_transients is None
            or self.transients_injected < self.max_transients
        )
        return bool(
            transients_left
            or self.countdown is not None
            or self.torn_write_at is not None
            or self.bitflip_at is not None
        )

    def on_op(self, op: str, page_number: Optional[int] = None) -> None:
        """Consulted before each logical operation; may raise a transient."""
        self.ops_seen += 1
        if op not in self.transient_ops or self.transient_rate <= 0.0:
            return
        if (
            self.max_transients is not None
            and self.transients_injected >= self.max_transients
        ):
            return
        if self._rng.random() < self.transient_rate:
            self.transients_injected += 1
            where = f" of page {page_number}" if page_number is not None else ""
            raise TransientIOError(
                f"injected transient fault on {op}{where} "
                f"(#{self.transients_injected})"
            )

    # -- physical seam (installed on DiskPagedStore) --------------------

    def filter_frame(self, page_number: int, frame: bytes) -> bytes:
        """Corrupt the Nth physical page frame per the schedule.

        Called by :class:`~repro.storage.ondisk.DiskPagedStore` with the
        fully framed slot image (header + payload) after the CRC has
        been computed over the *intended* payload — so a corrupted frame
        is guaranteed to fail its checksum on the next read.
        """
        index = self.physical_writes
        self.physical_writes += 1
        if index == self.torn_write_at:
            self.torn_writes += 1
            self.corrupted_pages.append(page_number)
            return frame[: max(1, len(frame) // 2)]
        if index == self.bitflip_at:
            self.bitflips += 1
            self.corrupted_pages.append(page_number)
            corrupted = bytearray(frame)
            position = self._rng.randrange(len(frame))
            corrupted[position] ^= 1 << self._rng.randrange(8)
            return bytes(corrupted)
        return frame

    def stats(self) -> Dict[str, object]:
        """Injection counters as a flat, printable dictionary."""
        return {
            "seed": self.seed,
            "transient_rate": self.transient_rate,
            "ops_seen": self.ops_seen,
            "physical_writes": self.physical_writes,
            "transients_injected": self.transients_injected,
            "crashes": self.crashes,
            "torn_writes": self.torn_writes,
            "bitflips": self.bitflips,
            "corrupted_pages": list(self.corrupted_pages),
        }


def find_disk_store(store: Optional[PageStore]) -> Optional[DiskStore]:
    """The :class:`DiskStore` layer inside a decorator stack, if any."""
    while store is not None:
        if isinstance(store, DiskStore):
            return store
        store = getattr(store, "inner", None)
    return None


class FaultyStore(PageStore):
    """Inject faults from a :class:`FaultPlan` into any wrapped backend.

    Logical faults (transients, the crash countdown on write-through
    puts) fire *before* the wrapped store is touched, so every faulted
    operation is side-effect free and idempotent to retry.  Physical
    faults (torn writes, bit-flips, crash-at-Nth-write) are delegated to
    the :class:`~repro.storage.ondisk.DiskPagedStore` at the bottom of
    the stack by installing the plan as its ``fault_injector`` hook;
    over a pure :class:`~repro.storage.backend.MemoryStore` there is no
    platter to corrupt and those schedule entries simply never fire.

    With a default (empty) plan the decorator is pure pass-through: the
    logical access sequence reaching the wrapped store is byte-identical
    to running without it.
    """

    name = "faulty"

    def __init__(self, inner: PageStore, plan: Optional[FaultPlan] = None):
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        self.num_pages = inner.num_pages
        disk = find_disk_store(inner)
        if disk is not None:
            disk.raw.fault_injector = self.plan

    # -- the protocol ---------------------------------------------------

    def peek(self, page_number: int) -> Page:
        return self.inner.peek(page_number)

    def get_page(self, page_number: int) -> Page:
        self.plan.on_op("get", page_number)
        return self.inner.get_page(page_number)

    def put_page(self, page_number: int) -> None:
        self.plan.on_op("put", page_number)
        self.inner.put_page(page_number)

    # move_records deliberately uses the inherited default: it is built
    # from this store's own get/put, so a fault can land on every step
    # of a SHIFT, while the touch sequence the wrapped store sees stays
    # identical to running undecorated (backends reduce to the same
    # read-source / write-dest / write-source order).

    def flush(self) -> int:
        self.plan.on_op("flush")
        return self.inner.flush()

    def close(self) -> None:
        self.inner.close()

    @property
    def closed(self) -> bool:
        return self.inner.closed

    def stats(self) -> Dict[str, object]:
        return {
            "backend": self.name,
            "plan": self.plan.stats(),
            "inner": self.inner.stats(),
        }


class BackoffPolicy(RetryPolicy):
    """The storage spelling of :class:`~repro.concurrent.retry.RetryPolicy`.

    Kept as a distinct name for backwards compatibility (every test and
    stack builder says ``BackoffPolicy``); the fields, validation and
    ``delay(attempt)`` schedule all come from the shared policy, so
    store-level and network-level retries can no longer diverge.  The
    default has no jitter — store retries back off against a local disk,
    not a thundering herd of clients.
    """


class RetryingStore(PageStore):
    """Absorb transient faults from the wrapped store with bounded retries.

    Each logical operation is attempted up to ``policy.max_attempts``
    times; only :class:`~repro.core.errors.TransientIOError` is retried
    (crashes and corruption must surface).  Between attempts the
    deterministic :class:`BackoffPolicy` delay is accumulated in the
    stats and slept via the injectable ``sleep`` callable (a no-op for
    the default zero base delay).

    ``move_records`` uses the inherited default built from this store's
    own get/put, so retries happen at single-operation granularity — a
    transient in the middle of a SHIFT never replays the record moves
    that already happened.

    **Deadline awareness.**  The concurrent front-end hands each
    operation's remaining time budget to this layer via
    :meth:`set_deadline` (stored per thread, since readers may run
    concurrently).  The retry loop then stops — raising
    :class:`~repro.core.errors.OperationTimeout` with the transient
    chained — as soon as the budget is spent or the next backoff delay
    would overrun it, instead of burning wall-clock the caller no
    longer has.  A faulted operation has no side effects, so giving up
    mid-retry leaves the store exactly as it was.
    """

    name = "retrying"

    def __init__(
        self,
        inner: PageStore,
        policy: Optional[BackoffPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.inner = inner
        self.policy = policy if policy is not None else BackoffPolicy()
        self.num_pages = inner.num_pages
        self._sleep = sleep
        self._local = threading.local()
        self.retries = 0
        self.giveups = 0
        self.deadline_giveups = 0
        self.backoff_total = 0.0

    # -- deadline plumbing ----------------------------------------------

    def set_deadline(self, deadline: Optional[Any]) -> None:
        """Install the calling thread's retry budget (``None`` clears it).

        ``deadline`` is duck-typed: anything with ``remaining() -> float``
        works (normally a :class:`~repro.concurrent.deadline.Deadline`).
        """
        self._local.deadline = deadline

    @property
    def deadline(self) -> Optional[Any]:
        """The calling thread's active retry budget, if any."""
        return getattr(self._local, "deadline", None)

    # -- retry engine ---------------------------------------------------

    def _attempt(self, operation: Callable[[], _T]) -> _T:
        return retry_call(
            operation,
            self.policy,
            retryable=(TransientIOError,),
            deadline=self.deadline,
            sleep=self._sleep,
            counters=self,
            what="store retry",
        )

    # -- the protocol ---------------------------------------------------

    def peek(self, page_number: int) -> Page:
        return self.inner.peek(page_number)

    def get_page(self, page_number: int) -> Page:
        return self._attempt(lambda: self.inner.get_page(page_number))

    def put_page(self, page_number: int) -> None:
        self._attempt(lambda: self.inner.put_page(page_number))

    def flush(self) -> int:
        return self._attempt(self.inner.flush)

    def close(self) -> None:
        self.inner.close()

    @property
    def closed(self) -> bool:
        return self.inner.closed

    def counters(self) -> Dict[str, object]:
        """Just this layer's absorption counters (no inner stats).

        The stress harness and ``scrub`` report these per run: how many
        transients were absorbed (``retries``), how many exhausted the
        policy (``giveups``), how many stopped early because the
        operation's deadline ran out (``deadline_giveups``), and the
        accumulated backoff time.
        """
        return {
            "retries": self.retries,
            "giveups": self.giveups,
            "deadline_giveups": self.deadline_giveups,
            "backoff_total": self.backoff_total,
        }

    def reset_counters(self) -> None:
        """Zero the absorption counters (for per-run reporting)."""
        self.retries = 0
        self.giveups = 0
        self.deadline_giveups = 0
        self.backoff_total = 0.0

    def stats(self) -> Dict[str, object]:
        report: Dict[str, object] = {
            "backend": self.name,
            "max_attempts": self.policy.max_attempts,
        }
        report.update(self.counters())
        report["inner"] = self.inner.stats()
        return report


def fault_tolerant_stack(
    inner: PageStore,
    plan: Optional[FaultPlan] = None,
    policy: Optional[BackoffPolicy] = None,
) -> RetryingStore:
    """``RetryingStore(FaultyStore(inner, plan), policy)`` in one call.

    The canonical test/chaos stack: faults injected below, absorbed
    above, with the wrapped backend none the wiser.
    """
    return RetryingStore(FaultyStore(inner, plan), policy=policy)
