"""Workload generation and execution for the evaluation harness."""

from .driver import RunResult, run_workload, split_workload
from .generators import (
    DELETE,
    INSERT,
    Operation,
    ascending_inserts,
    converging_inserts,
    descending_inserts,
    hotspot_inserts,
    interleaved_point_inserts,
    keys_of,
    mixed_workload,
    sawtooth_workload,
    uniform_random_inserts,
)
from .replay import TraceFormatError, dump_operations, load_operations
from .zipf import ZipfSampler, zipf_region_inserts

__all__ = [
    "DELETE",
    "INSERT",
    "Operation",
    "RunResult",
    "TraceFormatError",
    "ZipfSampler",
    "ascending_inserts",
    "converging_inserts",
    "descending_inserts",
    "dump_operations",
    "hotspot_inserts",
    "interleaved_point_inserts",
    "keys_of",
    "load_operations",
    "mixed_workload",
    "run_workload",
    "sawtooth_workload",
    "split_workload",
    "uniform_random_inserts",
    "zipf_region_inserts",
]
