"""Workload generators for the evaluation harness.

Every generator yields :class:`Operation` objects; the driver executes
them against any structure exposing ``insert``/``delete``.  Generators
are deterministic given a seed, so experiments are reproducible run to
run.

The *converging* and *hammer* workloads are the adversarial patterns the
paper worries about: "a large surge of insertions ... in a relatively
small portion of the sequential file".  Converging keys are represented
as exact :class:`fractions.Fraction` values so the adversary can subdivide
an interval indefinitely without floating-point collisions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction

from ..core.errors import UsageError
from typing import Any, Iterator, List, Optional, Sequence

INSERT = "insert"
DELETE = "delete"


@dataclass(frozen=True)
class Operation:
    """One insertion or deletion command."""

    kind: str
    key: Any
    value: Any = None

    def __post_init__(self):
        if self.kind not in (INSERT, DELETE):
            raise UsageError(f"unknown operation kind {self.kind!r}")


def uniform_random_inserts(
    count: int, key_space: int = 1 << 30, seed: int = 0
) -> List[Operation]:
    """``count`` inserts with keys drawn uniformly without replacement."""
    rng = random.Random(seed)
    keys = rng.sample(range(key_space), count)
    return [Operation(INSERT, key) for key in keys]


def ascending_inserts(count: int, start: int = 0, gap: int = 1) -> List[Operation]:
    """Monotonically increasing keys (append-at-end pattern)."""
    return [Operation(INSERT, start + index * gap) for index in range(count)]


def descending_inserts(count: int, start: int = 0, gap: int = 1) -> List[Operation]:
    """Monotonically decreasing keys (prepend-at-front pattern)."""
    return [Operation(INSERT, start - index * gap) for index in range(count)]


def converging_inserts(
    count: int, lo: int = 0, hi: int = 1, from_above: bool = True
) -> List[Operation]:
    """Keys converging onto a single point — the paper's "surge".

    Every key lands strictly between the previous key and ``lo`` (when
    ``from_above``) so all of them pile onto one spot of the key space:
    the hardest case for any density-maintenance scheme, and the exact
    scenario the introduction says overwhelms overflow heuristics.
    """
    operations = []
    low = Fraction(lo)
    high = Fraction(hi)
    for _ in range(count):
        mid = (low + high) / 2
        operations.append(Operation(INSERT, mid))
        if from_above:
            high = mid
        else:
            low = mid
    return operations


def hotspot_inserts(
    count: int,
    center: int,
    width: int,
    key_space: int = 1 << 30,
    hot_fraction: float = 0.9,
    seed: int = 0,
) -> List[Operation]:
    """A burst: ``hot_fraction`` of inserts fall in a narrow key window."""
    rng = random.Random(seed)
    operations: List[Operation] = []
    used = set()
    while len(operations) < count:
        if rng.random() < hot_fraction:
            key = center + Fraction(rng.randrange(width * 1000), 1000)
        else:
            key = rng.randrange(key_space)
        if key in used:
            continue
        used.add(key)
        operations.append(Operation(INSERT, key))
    return operations


def mixed_workload(
    count: int,
    insert_ratio: float = 0.7,
    key_space: int = 1 << 30,
    seed: int = 0,
    preloaded: Sequence = (),
) -> List[Operation]:
    """Random mix of inserts and deletes.

    Deletes always target a key known to be live (either preloaded or
    previously inserted), so the sequence is executable as-is.
    """
    rng = random.Random(seed)
    live: List = list(preloaded)
    live_set = set(live)
    operations: List[Operation] = []
    for _ in range(count):
        do_insert = rng.random() < insert_ratio or not live
        if do_insert:
            key = rng.randrange(key_space)
            while key in live_set:
                key = rng.randrange(key_space)
            live.append(key)
            live_set.add(key)
            operations.append(Operation(INSERT, key))
        else:
            index = rng.randrange(len(live))
            live[index], live[-1] = live[-1], live[index]
            key = live.pop()
            live_set.remove(key)
            operations.append(Operation(DELETE, key))
    return operations


def sawtooth_workload(
    count: int, key_space: int = 1 << 30, period: int = 64, seed: int = 0
) -> List[Operation]:
    """Alternating bursts of inserts then deletes of the same keys.

    Exercises the warning flags' raise/lower hysteresis: densities climb
    toward ``g(., 2/3)`` then fall back through ``g(., 1/3)`` repeatedly.
    """
    rng = random.Random(seed)
    operations: List[Operation] = []
    live: List = []
    live_set = set()
    while len(operations) < count:
        for _ in range(period):
            key = rng.randrange(key_space)
            while key in live_set:
                key = rng.randrange(key_space)
            live.append(key)
            live_set.add(key)
            operations.append(Operation(INSERT, key))
            if len(operations) >= count:
                return operations
        for _ in range(period):
            if not live:
                break
            key = live.pop(rng.randrange(len(live)))
            live_set.remove(key)
            operations.append(Operation(DELETE, key))
            if len(operations) >= count:
                return operations
    return operations


def interleaved_point_inserts(
    count: int, points: Sequence[int], seed: Optional[int] = None
) -> List[Operation]:
    """Converging inserts alternating between several hot points.

    Stresses CONTROL 2's roll-back rules: sweeps activated near
    different hot points traverse overlapping ranges in opposite
    directions.
    """
    streams = [
        iter(converging_inserts(count, lo=point, hi=point + 1))
        for point in points
    ]
    rng = random.Random(seed) if seed is not None else None
    operations: List[Operation] = []
    index = 0
    while len(operations) < count:
        if rng is not None:
            stream = streams[rng.randrange(len(streams))]
        else:
            stream = streams[index % len(streams)]
            index += 1
        operations.append(next(stream))
    return operations


def keys_of(operations) -> Iterator:
    """Convenience: the key stream of a list of operations."""
    for operation in operations:
        yield operation.key
