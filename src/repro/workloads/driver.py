"""Executes operation streams against any file structure.

The driver is deliberately structure-agnostic: anything with ``insert``
and ``delete`` methods (the dense file engines, the B+-tree, the PMA,
the overflow file, the packed file) can be driven, and per-operation
costs are extracted from the structure's ``stats`` accumulator.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.errors import ConfigurationError, UsageError
from ..core.trace import OperationLog
from .generators import DELETE, INSERT, Operation


def split_workload(
    operations: Sequence[Operation], workers: int
) -> List[List[Operation]]:
    """Partition one operation stream into per-worker executable streams.

    Operations are routed by a stable hash of their key, so *every
    operation on a given key lands in the same worker* in its original
    relative order.  A sequence that was executable as a whole (deletes
    only target keys previously inserted) therefore splits into streams
    that are each executable on a shared structure regardless of how the
    scheduler interleaves the workers — which is exactly what the
    concurrency torture harness needs.  The hash is ``zlib.crc32`` of
    the key's ``repr``, not Python's randomized ``hash``, so the split
    is reproducible across processes and runs.
    """
    if workers < 1:
        raise ConfigurationError("need at least one worker")
    streams: List[List[Operation]] = [[] for _ in range(workers)]
    for operation in operations:
        slot = zlib.crc32(repr(operation.key).encode()) % workers
        streams[slot].append(operation)
    return streams


@dataclass
class RunResult:
    """Everything measured while driving one workload."""

    log: OperationLog
    operations_executed: int
    validations: int = 0
    #: Per-operation record-move counts when the structure reports them.
    final_size: int = 0
    structure_name: str = ""
    errors: List[str] = field(default_factory=list)


def run_workload(
    structure,
    operations: Sequence[Operation],
    validate_every: int = 0,
    on_progress: Optional[Callable[[int], None]] = None,
) -> RunResult:
    """Drive ``operations`` through ``structure`` and meter each command.

    Parameters
    ----------
    structure:
        Any object with ``insert(key, value)``, ``delete(key)`` and a
        ``stats`` :class:`~repro.storage.cost.AccessStats`.
    validate_every:
        If positive, call ``structure.validate()`` after every that many
        operations (and once at the end).  Structures without a
        ``validate`` method are validated never.
    on_progress:
        Optional callback invoked with the operation index.
    """
    log = OperationLog()
    stats = structure.stats
    validations = 0
    moved_attr = hasattr(structure, "records_moved_total")
    can_validate = validate_every > 0 and hasattr(structure, "validate")
    for index, operation in enumerate(operations):
        stats.checkpoint("driver")
        moved_before = structure.records_moved_total if moved_attr else 0
        if operation.kind == INSERT:
            structure.insert(operation.key, operation.value)
        elif operation.kind == DELETE:
            structure.delete(operation.key)
        else:  # pragma: no cover - Operation validates kinds
            raise UsageError(f"unknown operation kind {operation.kind!r}")
        delta = stats.delta("driver")
        moved_after = structure.records_moved_total if moved_attr else 0
        log.append(
            accesses=delta.page_accesses,
            moved=moved_after - moved_before,
            cost=delta.cost,
            label=operation.kind,
        )
        if can_validate and (index + 1) % validate_every == 0:
            structure.validate()
            validations += 1
        if on_progress is not None:
            on_progress(index)
    if can_validate:
        structure.validate()
        validations += 1
    return RunResult(
        log=log,
        operations_executed=len(log),
        validations=validations,
        final_size=len(structure) if hasattr(structure, "__len__") else 0,
        structure_name=getattr(structure, "algorithm_name", type(structure).__name__),
    )
