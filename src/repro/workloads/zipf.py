"""Zipf-skewed key popularity for realistic skewed insert streams.

Many of the batch workloads Wiederhold motivates dense files with are
skewed: a few key regions receive most of the traffic.  This module
draws region indices from a Zipf(s) distribution over ``n`` regions via
an exact inverse-CDF table (no rejection, fully deterministic under a
seed).
"""

from __future__ import annotations

import bisect
import random
from fractions import Fraction
from typing import List

from ..core.errors import ConfigurationError
from .generators import INSERT, Operation


class ZipfSampler:
    """Samples integers in ``[0, n)`` with probability ``~ 1/(rank+1)^s``."""

    def __init__(self, n: int, s: float = 1.0, seed: int = 0):
        if n < 1:
            raise ConfigurationError("need at least one rank")
        if s < 0:
            raise ConfigurationError("the Zipf exponent must be non-negative")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0
        self._cdf = cumulative

    def sample(self) -> int:
        """Draw one Zipf-distributed rank in ``[0, n)``."""
        return bisect.bisect_left(self._cdf, self._rng.random())


def zipf_region_inserts(
    count: int,
    regions: int = 64,
    exponent: float = 1.1,
    region_width: int = 1 << 20,
    seed: int = 0,
) -> List[Operation]:
    """Inserts whose keys cluster in Zipf-popular regions.

    The key space is split into ``regions`` contiguous windows; each
    insert picks a window by Zipf rank and a unique offset within it.
    Duplicate offsets are resolved by exact fractional perturbation, so
    the stream never repeats a key.
    """
    sampler = ZipfSampler(regions, exponent, seed)
    rng = random.Random(seed + 1)
    used = set()
    operations: List[Operation] = []
    while len(operations) < count:
        region = sampler.sample()
        base = region * region_width + rng.randrange(region_width)
        key = base
        bump = 1
        while key in used:
            key = base + Fraction(1, 1 + bump)
            bump += 1
        used.add(key)
        operations.append(Operation(INSERT, key))
    return operations
