"""Save and load operation streams as JSON-lines trace files.

Experiments are only reproducible if their workloads are shareable:
this module serializes any :class:`~repro.workloads.generators.Operation`
list to a plain ``.jsonl`` file (one command per line) and loads it back
bit-identically, including exact :class:`fractions.Fraction` keys from
the adversarial generators.

Format: ``{"op": "insert"|"delete", "key": <encoded>, "value": <encoded>}``
where non-JSON-native keys are encoded as tagged objects
(``{"$frac": [num, den]}``, ``{"$tuple": [...]}``).
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Iterable, List

from ..core.errors import ReproError
from .generators import DELETE, INSERT, Operation


class TraceFormatError(ReproError, ValueError):
    """Raised when a trace file line cannot be decoded."""


def _encode_value(value: Any):
    if isinstance(value, Fraction):
        return {"$frac": [value.numerator, value.denominator]}
    if isinstance(value, tuple):
        return {"$tuple": [_encode_value(item) for item in value]}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, list):
        return {"$list": [_encode_value(item) for item in value]}
    if isinstance(value, dict):
        return {"$dict": [[_encode_value(k), _encode_value(v)]
                          for k, v in value.items()]}
    raise TraceFormatError(f"cannot encode {type(value).__name__} in a trace")


def _decode_value(value: Any):
    if isinstance(value, dict):
        if "$frac" in value:
            numerator, denominator = value["$frac"]
            return Fraction(numerator, denominator)
        if "$tuple" in value:
            return tuple(_decode_value(item) for item in value["$tuple"])
        if "$list" in value:
            return [_decode_value(item) for item in value["$list"]]
        if "$dict" in value:
            return {
                _decode_value(k): _decode_value(v) for k, v in value["$dict"]
            }
        raise TraceFormatError(f"unknown tagged value {sorted(value)}")
    return value


def dump_operations(operations: Iterable[Operation], path: str) -> int:
    """Write operations to ``path`` (JSONL); returns the line count."""
    count = 0
    with open(path, "w") as handle:
        for operation in operations:
            line = {
                "op": operation.kind,
                "key": _encode_value(operation.key),
            }
            if operation.value is not None:
                line["value"] = _encode_value(operation.value)
            handle.write(json.dumps(line) + "\n")
            count += 1
    return count


def load_operations(path: str) -> List[Operation]:
    """Read a trace file back into an operation list."""
    operations: List[Operation] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                kind = payload["op"]
                if kind not in (INSERT, DELETE):
                    raise TraceFormatError(f"unknown op {kind!r}")
                operations.append(
                    Operation(
                        kind,
                        _decode_value(payload["key"]),
                        _decode_value(payload.get("value")),
                    )
                )
            except (KeyError, json.JSONDecodeError) as error:
                raise TraceFormatError(
                    f"{path}:{line_number}: {error}"
                ) from error
    return operations
