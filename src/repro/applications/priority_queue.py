"""A priority queue on a dense sequential file (after [IKR80]).

Itai, Konheim and Rodeh introduced sparse tables as "a sparse table
implementation of priority queues"; Willard's CONTROL 2 gives the same
structure worst-case update bounds.  :class:`DensePriorityQueue` is that
application as a first-class API: a min-queue whose entries live in key
order across consecutive pages, so

* ``push``/``remove`` cost worst-case ``O(log²M/(D−d))`` page accesses
  (no heap-style worst-case rebuilds),
* ``pop``/``peek`` read exactly one page,
* ``drain_until`` (pop everything due before a deadline — the event-loop
  pattern) streams one sequential page run.

Entries are ``(priority, ticket)`` pairs: the ticket (a monotonically
increasing integer) makes equal priorities unique and FIFO-ordered,
like the counter trick in the standard ``heapq`` recipe.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from ..core.dense_file import DenseSequentialFile
from ..core.errors import ReproError


class EmptyQueueError(ReproError, IndexError):
    """Raised when popping or peeking an empty queue."""


class DensePriorityQueue:
    """A min-priority queue over a ``(d, D)``-dense sequential file.

    Parameters mirror :class:`~repro.core.dense_file.DenseSequentialFile`;
    capacity is ``d * num_pages`` entries.

    Examples
    --------
    >>> q = DensePriorityQueue(num_pages=64, d=8, D=40)
    >>> q.push(5, "five")
    >>> q.push(3, "three")
    >>> q.pop()
    (3, 'three')
    """

    def __init__(self, num_pages: int = 256, d: int = 8, D: int = 48, **kwargs):
        self._file = DenseSequentialFile(num_pages, d, D, **kwargs)
        self._ticket = 0

    def __len__(self) -> int:
        return len(self._file)

    @property
    def stats(self):
        """Access counters of the underlying simulated disk."""
        return self._file.stats

    # ------------------------------------------------------------------
    # queue operations
    # ------------------------------------------------------------------

    def push(self, priority, item=None) -> Tuple[Any, int]:
        """Enqueue ``item`` at ``priority``; returns its (priority, ticket)
        handle, usable with :meth:`remove`."""
        handle = (priority, self._ticket)
        self._ticket += 1
        self._file.insert(handle, item)
        return handle

    def peek(self) -> Tuple[Any, Any]:
        """The (priority, item) with the smallest priority, not removed."""
        head = self._file.min()
        if head is None:
            raise EmptyQueueError("peek on an empty queue")
        return head.key[0], head.value

    def pop(self) -> Tuple[Any, Any]:
        """Remove and return the (priority, item) with smallest priority.

        Ties pop in FIFO order thanks to the ticket component.
        """
        head = self._file.min()
        if head is None:
            raise EmptyQueueError("pop on an empty queue")
        self._file.delete(head.key)
        return head.key[0], head.value

    def remove(self, handle: Tuple[Any, int]) -> Any:
        """Cancel a specific entry by the handle ``push`` returned."""
        return self._file.delete(handle).value

    def drain_until(self, deadline) -> List[Tuple[Any, Any]]:
        """Pop every entry with priority <= ``deadline``, in order.

        The scan is one sequential page sweep; the removals are a bulk
        range deletion (single pass), so draining ``k`` due events costs
        ``O(pages holding them)`` rather than ``k`` heap pops.
        """
        upper = (deadline, float("inf"))
        due = [
            (record.key[0], record.value)
            for record in self._file.range((float("-inf"), -1), upper)
        ]
        if due:
            self._file.delete_range((float("-inf"), -1), upper)
        return due

    def due_count(self, deadline) -> int:
        """How many entries have priority <= ``deadline`` (<= 2 reads)."""
        return self._file.count_range(
            (float("-inf"), -1), (deadline, float("inf"))
        )

    def as_sorted_list(self) -> List[Tuple[Any, Any]]:
        """Snapshot of (priority, item) pairs in priority order."""
        return [
            (record.key[0], record.value)
            for record in self._file.range(
                (float("-inf"), -1), (float("inf"), float("inf"))
            )
        ]

    def validate(self) -> None:
        """Assert the underlying dense file's invariants."""
        self._file.validate()
