"""A time-series store on a dense sequential file.

The batch workloads Wiederhold motivates dense files with — "processing
several records with nearby key values" — are exactly time-window
queries over timestamped measurements.  :class:`TimeSeriesStore` wraps
the dense file with that vocabulary:

* ``record``/``record_batch`` measurements keyed by
  ``(timestamp, series)``, tolerating late and out-of-order arrivals
  (the dense file absorbs them with its worst-case bound instead of an
  LSM-style compaction debt);
* ``window``/``series_window`` stream a time range as one sequential
  page sweep;
* ``expire`` applies a retention policy as one bulk range deletion,
  with optional ``compact`` to re-level the file afterwards;
* ``count`` answers window cardinalities from the in-core counters.

Window bounds use tuple-ordering tricks so they need no assumptions
about series names: the 1-tuple ``(t,)`` sorts before every stored key
``(t, series)``, and the :class:`_Top` sentinel sorts after every
series name.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..core.dense_file import DenseSequentialFile


class _Top:
    """Compares greater than every other value (window upper bounds)."""

    __slots__ = ()

    def __lt__(self, other) -> bool:
        return False

    def __le__(self, other) -> bool:
        return isinstance(other, _Top)

    def __gt__(self, other) -> bool:
        return not isinstance(other, _Top)

    def __ge__(self, other) -> bool:
        return True


_TOP = _Top()


class TimeSeriesStore:
    """Timestamped measurements over a ``(d, D)``-dense sequential file.

    Keys are ``(timestamp, series_name)`` pairs, so all series interleave
    in one global time order and windows across series are contiguous on
    disk.  Timestamps must be mutually comparable numbers; series names
    mutually comparable values (strings, typically).
    """

    def __init__(self, num_pages: int = 512, d: int = 8, D: int = 48, **kwargs):
        self._file = DenseSequentialFile(num_pages, d, D, **kwargs)

    def __len__(self) -> int:
        return len(self._file)

    @property
    def stats(self):
        """Access counters of the underlying simulated disk."""
        return self._file.stats

    @property
    def capacity(self) -> int:
        """Maximum number of measurements the store can hold."""
        return self._file.params.max_records

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def record(self, timestamp, series, value=None) -> None:
        """Store one measurement (late/out-of-order arrivals welcome)."""
        self._file.insert((timestamp, series), value)

    def record_batch(self, measurements) -> int:
        """Store an iterable of ``(timestamp, series, value)`` triples."""
        return self._file.insert_many(
            ((timestamp, series), value)
            for timestamp, series, value in measurements
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def window(self, start, end) -> Iterator[Tuple[Any, Any, Any]]:
        """Stream ``(timestamp, series, value)`` with start <= t <= end."""
        for record in self._file.range((start,), (end, _TOP)):
            timestamp, series = record.key
            yield timestamp, series, record.value

    def series_window(self, series, start, end) -> List[Tuple[Any, Any]]:
        """``(timestamp, value)`` of one series within a time window."""
        return [
            (timestamp, value)
            for timestamp, name, value in self.window(start, end)
            if name == series
        ]

    def latest(self) -> Optional[Tuple[Any, Any, Any]]:
        """The most recent measurement, or ``None`` when empty."""
        record = self._file.max()
        if record is None:
            return None
        timestamp, series = record.key
        return timestamp, series, record.value

    def count(self, start, end) -> int:
        """Measurements in the window (at most two page accesses)."""
        return self._file.count_range((start,), (end, _TOP))

    # ------------------------------------------------------------------
    # retention
    # ------------------------------------------------------------------

    def expire(self, cutoff, compact: bool = False) -> int:
        """Drop every measurement with timestamp < ``cutoff``.

        One bulk range deletion; pass ``compact=True`` to re-level the
        file afterwards so future window scans touch the fewest pages.
        Returns the number of measurements dropped.  Measurements at
        exactly ``cutoff`` survive (the 1-tuple bound ``(cutoff,)``
        sorts below every real key at that instant).
        """
        head = self._file.min()
        if head is None:
            return 0
        removed = self._file.delete_range(head.key, (cutoff,))
        if compact and removed:
            self._file.compact()
        return removed

    def validate(self) -> None:
        """Assert the underlying dense file's invariants."""
        self._file.validate()
