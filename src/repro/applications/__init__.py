"""Domain layers built on the dense file: the paper's motivating uses."""

from .priority_queue import DensePriorityQueue, EmptyQueueError
from .timeseries import TimeSeriesStore

__all__ = [
    "DensePriorityQueue",
    "EmptyQueueError",
    "TimeSeriesStore",
]
