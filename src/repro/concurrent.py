"""A coarse-grained thread-safe wrapper for dense files.

The engines are single-writer data structures (the paper's algorithms
are sequential); :class:`ThreadSafeDenseFile` makes one safe to share
across threads by serializing every operation behind one reentrant
lock.  Scans are materialized *under the lock* and returned as lists,
so callers never iterate a structure that another thread is mutating.

This is deliberately the simplest correct concurrency story — a global
lock matches both the paper's model and CPython's execution model.
Fine-grained locking of calibrator subtrees is possible in principle
(SHIFT touches disjoint page ranges most of the time) but is out of
scope for the reproduction.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from .records import Record


class ThreadSafeDenseFile:
    """Serialize access to any dense-file facade behind one lock.

    Wraps a :class:`~repro.core.dense_file.DenseSequentialFile` or a
    :class:`~repro.persistent.PersistentDenseFile`-compatible object.
    """

    def __init__(self, inner):
        self._inner = inner
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def insert(self, key, value=None) -> None:
        """Insert a record (serialized)."""
        with self._lock:
            self._inner.insert(key, value)

    def delete(self, key) -> Record:
        """Delete and return the record with ``key`` (serialized)."""
        with self._lock:
            return self._inner.delete(key)

    def update(self, key, value) -> Record:
        """Replace the value under ``key`` in place (serialized)."""
        with self._lock:
            return self._inner.update(key, value)

    def insert_many(self, items) -> int:
        """Insert a batch atomically with respect to other threads."""
        with self._lock:
            return self._inner.insert_many(items)

    def delete_range(self, lo_key, hi_key) -> int:
        """Bulk-delete a key range atomically w.r.t. other threads."""
        with self._lock:
            return self._inner.delete_range(lo_key, hi_key)

    def compact(self) -> int:
        """Uniformly redistribute all records (serialized)."""
        with self._lock:
            return self._inner.compact()

    # ------------------------------------------------------------------
    # queries (scans materialize under the lock)
    # ------------------------------------------------------------------

    def search(self, key) -> Optional[Record]:
        """Return the record with ``key`` or ``None`` (serialized)."""
        with self._lock:
            return self._inner.search(key)

    def range(self, lo_key, hi_key) -> List[Record]:
        """Records with ``lo_key <= key <= hi_key`` as a snapshot list."""
        with self._lock:
            return list(self._inner.range(lo_key, hi_key))

    def scan(self, start_key, count: int) -> List[Record]:
        """Up to ``count`` records from ``start_key`` (snapshot)."""
        with self._lock:
            return self._inner.scan(start_key, count)

    def rank(self, key) -> int:
        """Records with key strictly below ``key`` (serialized)."""
        with self._lock:
            return self._inner.rank(key)

    def count_range(self, lo_key, hi_key) -> int:
        """Records with ``lo_key <= key <= hi_key`` (serialized)."""
        with self._lock:
            return self._inner.count_range(lo_key, hi_key)

    def select(self, index: int) -> Record:
        """The record of 0-based rank ``index`` (serialized)."""
        with self._lock:
            return self._inner.select(index)

    def min(self) -> Optional[Record]:
        """Smallest-keyed record (serialized)."""
        with self._lock:
            return self._inner.min()

    def max(self) -> Optional[Record]:
        """Largest-keyed record (serialized)."""
        with self._lock:
            return self._inner.max()

    def successor(self, key) -> Optional[Record]:
        """Smallest record with key > ``key`` (serialized)."""
        with self._lock:
            return self._inner.successor(key)

    def predecessor(self, key) -> Optional[Record]:
        """Largest record with key < ``key`` (serialized)."""
        with self._lock:
            return self._inner.predecessor(key)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._inner

    def __len__(self) -> int:
        with self._lock:
            return len(self._inner)

    # ------------------------------------------------------------------
    # maintenance and lifecycle
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Assert the structural invariants (serialized)."""
        with self._lock:
            self._inner.validate()

    def flush(self):
        """Flush the wrapped file's storage stack (serialized)."""
        with self._lock:
            return self._inner.flush()

    def close(self) -> None:
        """Flush and close the wrapped file (serialized)."""
        with self._lock:
            self._inner.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._inner.closed

    def __enter__(self) -> "ThreadSafeDenseFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def params(self):
        """The wrapped file's density parameters."""
        return self._inner.params

    @property
    def stats(self):
        """The wrapped file's access counters (read without the lock)."""
        return self._inner.stats

    @property
    def inner(self):
        """The wrapped facade (callers must hold no expectations of
        thread safety when touching it directly)."""
        return self._inner
