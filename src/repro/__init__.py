"""repro — reproduction of Willard (SIGMOD 1986).

Good worst-case algorithms for inserting and deleting records in dense
sequential files: the calibrator tree, CONTROL 1 (amortized) and
CONTROL 2 (worst-case ``O(log^2 M / (D - d))`` page accesses per
update), the macro-block extension, plus the baselines and simulated
disk substrate used to reproduce the paper's claims.

Quickstart
----------
>>> from repro import DenseSequentialFile
>>> f = DenseSequentialFile(num_pages=64, d=8, D=40)
>>> for key in range(100):
...     f.insert(key)
>>> len(list(f.range(10, 19)))
10
"""

from .concurrent import (
    AdmissionGate,
    Deadline,
    FairRWLock,
    RetryPolicy,
    ThreadSafeDenseFile,
)
from .core import (
    AdaptiveControl2Engine,
    CalibratorTree,
    CircuitOpenError,
    ClusterError,
    ConfigurationError,
    Control1Engine,
    Control2Engine,
    DenseSequentialFile,
    DensityParams,
    DuplicateKeyError,
    FileFullError,
    InvariantViolationError,
    LockProtocolError,
    MacroBlockControl2Engine,
    Moment,
    MomentRecorder,
    OperationLog,
    OperationTimeout,
    OverloadError,
    ReadOnlyError,
    RecordNotFoundError,
    ReplicationError,
    ReproError,
    ShardUnavailableError,
    StaleReplicaError,
    TransientIOError,
    TransientNetworkError,
    UsageError,
    WireProtocolError,
    build_engine,
    ceil_log2,
    macro_block_factor,
    macro_params,
    recommended_j,
)
from .persistent import JournaledDenseFile, PersistentDenseFile
from .records import Record, ensure_record
from .replication import (
    DirectoryTransport,
    Failover,
    JournalShipper,
    PromotionResult,
    QueueTransport,
    Replica,
    SoakConfig,
    SoakReport,
    StateRecorder,
    bootstrap_replica,
    run_soak,
)
from .storage import (
    AccessStats,
    AccessTrace,
    BackoffPolicy,
    BufferedStore,
    CostModel,
    DISK_ARM_MODEL,
    DiskStore,
    FaultPlan,
    FaultyStore,
    MemoryStore,
    PAGE_ACCESS_MODEL,
    PageFile,
    PageStore,
    RetryingStore,
    ScrubReport,
    SimulatedDisk,
    fault_tolerant_stack,
    make_store,
    scrub,
)

# The cluster package sits on top of concurrent + storage; importing it
# last keeps the storage.faults -> concurrent.retry submodule import
# free of a partially-initialized-package cycle.
from .cluster import (
    ChaosChannel,
    CircuitBreaker,
    ClusterClient,
    ClusterServer,
    NetFaultPlan,
    ScanResult,
    ShardMap,
    ShardedDenseFile,
)

__version__ = "1.0.0"

__all__ = [
    "AccessStats",
    "AdaptiveControl2Engine",
    "AccessTrace",
    "AdmissionGate",
    "BackoffPolicy",
    "BufferedStore",
    "CalibratorTree",
    "ChaosChannel",
    "CircuitBreaker",
    "CircuitOpenError",
    "ClusterClient",
    "ClusterError",
    "ClusterServer",
    "ConfigurationError",
    "Control1Engine",
    "Control2Engine",
    "CostModel",
    "DISK_ARM_MODEL",
    "Deadline",
    "DenseSequentialFile",
    "DensityParams",
    "DirectoryTransport",
    "DiskStore",
    "DuplicateKeyError",
    "Failover",
    "FairRWLock",
    "FaultPlan",
    "FaultyStore",
    "FileFullError",
    "InvariantViolationError",
    "JournalShipper",
    "LockProtocolError",
    "JournaledDenseFile",
    "MacroBlockControl2Engine",
    "MemoryStore",
    "Moment",
    "NetFaultPlan",
    "MomentRecorder",
    "OperationLog",
    "OperationTimeout",
    "OverloadError",
    "PAGE_ACCESS_MODEL",
    "PageFile",
    "PageStore",
    "PersistentDenseFile",
    "PromotionResult",
    "QueueTransport",
    "ReadOnlyError",
    "Record",
    "RecordNotFoundError",
    "ReplicationError",
    "ReproError",
    "Replica",
    "RetryPolicy",
    "RetryingStore",
    "ScanResult",
    "ShardMap",
    "ShardUnavailableError",
    "ShardedDenseFile",
    "StaleReplicaError",
    "ScrubReport",
    "SimulatedDisk",
    "SoakConfig",
    "SoakReport",
    "StateRecorder",
    "ThreadSafeDenseFile",
    "TransientIOError",
    "TransientNetworkError",
    "UsageError",
    "WireProtocolError",
    "bootstrap_replica",
    "build_engine",
    "ceil_log2",
    "ensure_record",
    "fault_tolerant_stack",
    "macro_block_factor",
    "make_store",
    "macro_params",
    "recommended_j",
    "run_soak",
    "scrub",
]
