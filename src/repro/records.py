"""The record model shared by every file structure in this package.

The paper manipulates records identified by a totally ordered key,
``KEY(R)``, stored at a page address ``ADD(R)``.  We model a record as an
immutable ``(key, value)`` pair; keys must be mutually comparable (ints,
floats, strings, tuples, ...) and unique within a file.
"""

from __future__ import annotations

from typing import Any, NamedTuple


class Record(NamedTuple):
    """An immutable keyed record.

    Attributes
    ----------
    key:
        The ordering key, ``KEY(R)`` in the paper.  Any totally ordered
        Python value works as long as all keys in one file are mutually
        comparable.
    value:
        Opaque payload carried along with the key.  ``None`` by default
        so key-only workloads stay cheap.
    """

    key: Any
    value: Any = None


def ensure_record(item: Any) -> Record:
    """Coerce ``item`` into a :class:`Record`.

    Accepts an existing :class:`Record`, a ``(key, value)`` pair, or a
    bare key (which becomes ``Record(key, None)``).
    """
    if isinstance(item, Record):
        return item
    if isinstance(item, tuple) and len(item) == 2:
        return Record(item[0], item[1])
    return Record(item)
