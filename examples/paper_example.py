"""Replay of the paper's Example 5.2 with a step-by-step narration.

Run with:  python examples/paper_example.py

Reproduces Figure 4 of Willard (SIGMOD 1986): the 8-page file with
d=9, D=18, J=3, the two insertion commands Z1 and Z2, every SHIFT, and
the roll-back of DEST(v3) — then prints the regenerated Figure 4 table
next to the paper's values.
"""

from repro import Control2Engine, DensityParams, MomentRecorder
from repro.analysis import render_table

PAPER_ROWS = {
    "t0": (16, 1, 0, 1, 9, 9, 9, 16),
    "t1": (16, 1, 0, 1, 9, 9, 9, 17),
    "t2": (16, 1, 0, 1, 9, 9, 15, 11),
    "t3": (16, 1, 0, 1, 9, 9, 15, 11),
    "t4": (16, 2, 0, 0, 9, 9, 15, 11),
    "t5": (17, 2, 0, 0, 9, 9, 15, 11),
    "t6": (4, 15, 0, 0, 9, 9, 15, 11),
    "t7": (15, 4, 0, 0, 9, 9, 15, 11),
    "t8": (15, 9, 0, 0, 4, 9, 15, 11),
}


def main() -> None:
    params = DensityParams(num_pages=8, d=9, D=18, j=3)
    print(f"geometry: {params}")
    print(f"leaf thresholds: g(L,1/3)=16, g(L,2/3)=17, g(L,0)=15, g(L,1)=18")

    engine = Control2Engine(params)
    engine.load_occupancies([16, 1, 0, 1, 9, 9, 9, 16], key_start=0, key_gap=10)
    recorder = MomentRecorder(moment_types={"3", "4c"}).attach(engine)

    tree = engine.calibrator
    names = {tree.leaf_of_page[page]: f"L{page}" for page in range(1, 9)}
    names[tree.right[tree.root]] = "v3"
    names[tree.left[tree.root]] = "v2"
    names[tree.root] = "v1"

    def describe(moment):
        warned = ", ".join(names.get(node, f"n{node}") for node in moment.warnings)
        dests = ", ".join(
            f"DEST({names.get(node, node)})={dest}"
            for node, dest in moment.destinations
        )
        return f"warnings: [{warned or '-'}]  {dests}"

    print("\n--- command Z1: insert a record into page 8 ---")
    engine.insert_at_page(8, 10_000)
    for moment in recorder.moments:
        print(f"  {moment.occupancies}   {describe(moment)}")

    offset = len(recorder.moments)
    print("\n--- command Z2: insert a record into page 1 ---")
    engine.insert_at_page(1, -10_000)
    for moment in recorder.moments[offset:]:
        print(f"  {moment.occupancies}   {describe(moment)}")

    rows = [("t0", PAPER_ROWS["t0"], PAPER_ROWS["t0"])]
    for index, moment in enumerate(recorder.moments, start=1):
        label = f"t{index}"
        rows.append((label, PAPER_ROWS[label], moment.occupancies))

    print("\n" + render_table(
        ["time", "paper (Figure 4)", "this implementation", "match"],
        [
            [label, str(list(paper)), str(list(ours)), "yes" if paper == ours else "NO"]
            for label, paper, ours in rows
        ],
        title="Figure 4, regenerated:",
    ))

    mismatches = [label for label, paper, ours in rows if paper != ours]
    engine.validate()
    if mismatches:
        raise SystemExit(f"MISMATCH at {mismatches}")
    print("\nall 9 rows match the paper bit for bit; invariants hold.")


if __name__ == "__main__":
    main()
