"""Stream analytics: the workload dense sequential files were built for.

Run with:  python examples/stream_analytics.py

Wiederhold's motivation (cited in the paper's introduction): batch jobs
that process runs of records with nearby key values are fastest when
those records sit on physically adjacent pages.  This example simulates
a sensor archive keyed by timestamp:

* bulk-load a day of readings,
* keep ingesting out-of-order readings (late arrivals) while analysts
  repeatedly scan time windows,
* compare the modelled disk cost of the same windows on a B+-tree.
"""

import random

from repro import Control2Engine, DensityParams
from repro.analysis import render_table
from repro.baselines.btree import BPlusTree
from repro.storage.cost import DISK_ARM_MODEL

SECONDS_PER_DAY = 86_400
READINGS = 4_000
LATE_ARRIVALS = 1_500
WINDOWS = [60, 600, 3_600]  # one minute, ten minutes, one hour


def build_archives(rng):
    base = sorted(rng.sample(range(SECONDS_PER_DAY * 10), READINGS))
    dense = Control2Engine(
        DensityParams(num_pages=512, d=16, D=64), model=DISK_ARM_MODEL
    )
    dense.bulk_load((t, f"reading@{t}") for t in base)
    tree = BPlusTree(fanout=16, leaf_capacity=64, model=DISK_ARM_MODEL)
    tree.bulk_load((t, f"reading@{t}") for t in base)

    # Late arrivals trickle in out of order while the archive is hot.
    live = set(base)
    count = 0
    while count < LATE_ARRIVALS:
        t = rng.randrange(SECONDS_PER_DAY * 10)
        if t in live:
            continue
        live.add(t)
        dense.insert(t, f"late@{t}")
        tree.insert(t, f"late@{t}")
        count += 1
    dense.validate()
    return dense, tree


def window_cost(structure, start: int, width: int):
    structure.stats.checkpoint("window")
    hits = sum(1 for _ in structure.range_scan(start, start + width))
    return hits, structure.stats.delta("window").cost


def main() -> None:
    rng = random.Random(2026)
    print("building archives (dense file + B+-tree, same readings)...")
    dense, tree = build_archives(rng)
    print(f"archive holds {len(dense)} readings")

    rows = []
    for width in WINDOWS:
        dense_cost = tree_cost = hits_total = 0.0
        for _ in range(10):
            start = rng.randrange(SECONDS_PER_DAY * 9)
            hits, cost = window_cost(dense, start, width)
            hits2, cost2 = window_cost(tree, start, width)
            assert hits == hits2
            dense_cost += cost
            tree_cost += cost2
            hits_total += hits
        rows.append([
            f"{width}s",
            f"{hits_total / 10:.0f}",
            f"{dense_cost / 10:.0f}",
            f"{tree_cost / 10:.0f}",
            f"{tree_cost / max(dense_cost, 1e-9):.1f}x",
        ])

    print()
    print(render_table(
        ["window", "avg records", "dense cost", "B+-tree cost", "B+tree/dense"],
        rows,
        title="time-window scans under the disk-arm cost model "
        "(10 random windows each):",
    ))
    print(
        "\nThe dense file reads each window as one sequential sweep; the\n"
        "B+-tree chases a leaf chain scattered by 1500 late-arrival splits."
    )


if __name__ == "__main__":
    main()
