"""A durable product catalog on a persistent dense sequential file.

Run with:  python examples/persistent_catalog.py

Shows the on-disk side of the library: a catalog keyed by SKU that
survives process restarts, detects bit rot via per-page checksums, and
keeps its worst-case update guarantees while writing through to a real
OS file.  Equivalent CLI commands are printed alongside each step.
"""

import os
import tempfile

from repro import PersistentDenseFile
from repro.analysis import fill_summary, occupancy_bar


def main() -> None:
    directory = tempfile.mkdtemp(prefix="repro-catalog-")
    path = os.path.join(directory, "catalog.dsf")

    # --- create ----------------------------------------------------------
    print(f"# repro create {path} --pages 128 --low-density 8 --capacity 48")
    catalog = PersistentDenseFile.create(path, num_pages=128, d=8, D=48)
    print(f"created {path} (cap {catalog.params.max_records} records)\n")

    # --- load the catalog -------------------------------------------------
    print("# loading 600 SKUs ...")
    catalog.insert_many(
        (sku, {"name": f"part-{sku}", "stock": sku % 17})
        for sku in range(10_000, 40_000, 50)
    )
    print(fill_summary(catalog.occupancies(), catalog.params.D))
    print(f"|{occupancy_bar(catalog.occupancies(), catalog.params.D)}|\n")

    # --- daily churn -------------------------------------------------------
    print("# repro put / delete ... (daily churn)")
    for sku in range(10_025, 12_000, 50):
        catalog.insert(sku, {"name": f"part-{sku}", "stock": 0})
    catalog.delete_range(30_000, 31_000)
    catalog.update(10_000, {"name": "part-10000", "stock": 99})
    catalog.flush()
    size_before = len(catalog)
    print(f"{size_before} SKUs on disk, fsynced\n")
    catalog.close()

    # --- the process "restarts" -------------------------------------------
    print("# ... process restarts; repro info", path)
    with PersistentDenseFile.open(path) as reopened:
        assert len(reopened) == size_before
        record = reopened.search(10_000)
        print(f"reopened: {len(reopened)} SKUs, search(10000) -> {record.value}")
        window = [r.key for r in reopened.range(10_000, 10_200)]
        print(f"SKUs in [10000, 10200]: {window}")
        reopened.validate()
        print("validate(): in-core and on-disk state agree; invariants hold\n")

    # --- bit rot ------------------------------------------------------------
    print("# simulating bit rot (flipping one byte mid-file) ...")
    with open(path, "r+b") as handle:
        handle.seek(os.path.getsize(path) // 2)
        original = handle.read(1)
        handle.seek(-1, os.SEEK_CUR)
        handle.write(bytes([original[0] ^ 0xFF]))

    from repro.storage.ondisk import DiskPagedStore

    with DiskPagedStore.open(path) as store:
        corrupt = store.verify_all()
    print(f"# repro verify {path}")
    if corrupt:
        print(f"checksums caught the damage: corrupt pages {corrupt}")
    else:
        print("flip landed in slot padding; checksums clean")
    print(f"\n(artifacts left in {directory})")


if __name__ == "__main__":
    main()
