"""Quickstart: a (d, D)-dense sequential file in five minutes.

Run with:  python examples/quickstart.py

Creates a dense sequential file maintained by CONTROL 2 (Willard,
SIGMOD 1986), performs inserts, lookups, deletions and ordered range
scans, and shows the cost counters and invariant checker.
"""

from repro import DenseSequentialFile


def main() -> None:
    # A file of M=256 pages.  Up to d=8 records per page on average
    # (cap 2048 records), at most D=48 on any single page.  The slack
    # D - d pays for worst-case O(log^2 M / (D - d)) updates.
    dense = DenseSequentialFile(num_pages=256, d=8, D=48)
    print(f"created: {dense!r}")
    print(f"shift budget J = {dense.params.shift_budget}")

    # --- inserts -------------------------------------------------------
    for user_id in range(0, 1000, 2):
        dense.insert(user_id, value={"name": f"user-{user_id}"})
    print(f"\nloaded {len(dense)} records")

    # --- point lookups -------------------------------------------------
    record = dense.search(42)
    print(f"search(42)  -> {record.value}")
    print(f"search(43)  -> {dense.search(43)}")
    print(f"41 in file  -> {41 in dense}")

    # --- the reason dense files exist: ordered streams -----------------
    window = [record.key for record in dense.range(100, 120)]
    print(f"\nrange(100, 120) -> {window}")
    nxt = [record.key for record in dense.scan(500, count=5)]
    print(f"scan(500, 5)    -> {nxt}")

    # --- updates and deletes -------------------------------------------
    dense.update(42, {"name": "renamed"})
    dense.delete(44)
    print(f"\nafter update/delete: search(42).value={dense.search(42).value}, "
          f"44 in file -> {44 in dense}")

    # --- cost accounting -----------------------------------------------
    stats = dense.stats
    print(f"\ncost so far: {stats.reads} reads, {stats.writes} writes "
          f"({stats.page_accesses} page accesses)")

    # --- invariants ------------------------------------------------------
    dense.validate()  # raises InvariantViolationError if anything is off
    print("validate(): sequential order, (d,D)-density, BALANCE(d,D), "
          "counters — all hold")

    occupancies = dense.occupancies()
    print(f"\npage fill: min={min(occupancies)}, max={max(occupancies)}, "
          f"mean={sum(occupancies) / len(occupancies):.1f} (D={dense.params.D})")


if __name__ == "__main__":
    main()
