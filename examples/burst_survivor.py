"""Surviving an insertion surge: dense file vs overflow chaining.

Run with:  python examples/burst_survivor.py

Recreates the failure mode from the paper's introduction: "a large surge
of insertions ... in a relatively small portion of the sequential file
... tend[s] to overwhelm even the best heuristics".  A customer-orders
table keyed by order id takes a flash-sale burst of orders in one id
region; we watch what happens to an overflow-chained layout versus the
CONTROL 2 dense file, before and after the surge.
"""

from repro import Control2Engine, DensityParams
from repro.analysis import render_table
from repro.baselines.overflow_file import OverflowChainFile
from repro.storage.cost import CostModel
from repro.workloads import interleaved_point_inserts

MODEL = CostModel(seek_base=20.0, seek_per_page=0.02, seek_max=40.0)
NUM_PAGES = 64
CAPACITY = 40
BASE_ORDERS = list(range(0, 12_000, 30))
SURGE = 560
HOT_REGIONS = [2_000, 5_000, 8_000, 11_000]


def scan_window(structure, lo, hi):
    structure.stats.checkpoint("scan")
    found = sum(1 for _ in structure.range_scan(lo, hi))
    return found, structure.stats.delta("scan").cost


def report(stage, dense, overflow):
    lo, hi = HOT_REGIONS[0] - 200, HOT_REGIONS[-1] + 200
    dense_found, dense_cost = scan_window(dense, lo, hi)
    over_found, over_cost = scan_window(overflow, lo, hi)
    assert dense_found == over_found
    print(render_table(
        ["structure", "records in window", "scan cost", "longest chain"],
        [
            ["dense file (CONTROL 2)", dense_found, f"{dense_cost:.0f}", "-"],
            [
                "overflow-chained file",
                over_found,
                f"{over_cost:.0f}",
                overflow.longest_chain(),
            ],
        ],
        title=f"{stage}: reporting scan across the sale regions",
    ))
    print()


def main() -> None:
    dense = Control2Engine(
        DensityParams(num_pages=NUM_PAGES, d=16, D=CAPACITY), model=MODEL
    )
    dense.bulk_load(BASE_ORDERS)
    overflow = OverflowChainFile(
        num_primary_pages=NUM_PAGES, capacity=CAPACITY, model=MODEL
    )
    overflow.bulk_load(BASE_ORDERS)

    report("BEFORE the flash sale", dense, overflow)

    print(f"flash sale: {SURGE} orders land in {len(HOT_REGIONS)} id regions...\n")
    dense_log = dense.enable_operation_log()
    for operation in interleaved_point_inserts(SURGE, points=HOT_REGIONS):
        dense.insert(operation.key)
        overflow.insert(operation.key)

    report("AFTER the flash sale", dense, overflow)

    params = dense.params
    print(
        f"during the surge, the dense file's worst single insert cost "
        f"{dense_log.worst_case_accesses} page accesses "
        f"(J={params.shift_budget}; bound "
        f"{3 * params.shift_budget + 2 * params.log_m + 4}).\n"
        "The overflow file took inserts cheaply — and will pay on every "
        "future scan, forever, until it is reorganized offline."
    )
    dense.validate()


if __name__ == "__main__":
    main()
