"""A metrics backend on the TimeSeriesStore application layer.

Run with:  python examples/metrics_dashboard.py

Simulates a small monitoring backend: three metric series stream in
(with some late arrivals), a dashboard repeatedly renders the last-hour
window, and a retention job expires old points nightly.  Everything
rides on the dense sequential file, so window reads stay sequential no
matter how messy the ingest order was.
"""

import random

from repro.analysis import occupancy_bar, render_table
from repro.applications import TimeSeriesStore

SERIES = ["cpu", "memory", "requests"]
MINUTES = 600


def ingest(store, rng):
    measurements = []
    for minute in range(MINUTES):
        for name in SERIES:
            jitter = rng.random()
            measurements.append(
                (minute * 60 + jitter, name, round(rng.random() * 100, 1))
            )
    rng.shuffle(measurements)  # arrival order is not time order
    store.record_batch(measurements)


def render_last_hour(store, now):
    rows = []
    for name in SERIES:
        points = store.series_window(name, now - 3600, now)
        values = [value for _, value in points]
        rows.append([
            name,
            len(points),
            f"{min(values):.1f}" if values else "-",
            f"{sum(values) / len(values):.1f}" if values else "-",
            f"{max(values):.1f}" if values else "-",
        ])
    return render_table(
        ["series", "points", "min", "avg", "max"],
        rows,
        title=f"last hour as of t={now}s:",
    )


def main() -> None:
    rng = random.Random(42)
    store = TimeSeriesStore(num_pages=512, d=8, D=48)
    print(f"ingesting {MINUTES} minutes x {len(SERIES)} series "
          "(shuffled arrival order)...")
    ingest(store, rng)
    print(f"{len(store)} points stored "
          f"(capacity {store.capacity})\n")

    now = MINUTES * 60
    store.stats.checkpoint("dash")
    print(render_last_hour(store, now))
    cost = store.stats.delta("dash")
    print(f"\ndashboard window cost: {cost.reads} page reads "
          "(one sequential sweep per render)")

    print(f"\ncount(0..{now}) via calibrator counters: "
          f"{store.count(0, now)} points, "
          f"{store.stats.delta('dash').reads - cost.reads} extra reads")

    print("\nretention: expiring everything older than 8 hours...")
    removed = store.expire(now - 8 * 3600, compact=True)
    print(f"expired {removed} points; {len(store)} remain (file compacted)")
    occupancies = store._file.occupancies()
    print(f"layout |{occupancy_bar(occupancies, 48)}|")
    store.validate()
    print("invariants hold")


if __name__ == "__main__":
    main()
