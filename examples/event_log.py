"""An event scheduler on a dense sequential file (sparse-table style).

Run with:  python examples/event_log.py

Itai, Konheim and Rodeh's paper — the closest prior art the paper cites —
was titled "A Sparse Table Implementation of Priority Queues".  This
example uses the CONTROL 2 dense file as exactly that: a priority queue
of timestamped events supporting

* schedule(time, payload)      -> insert
* cancel(time)                 -> delete
* pop_next()                   -> smallest-key delete
* due_between(t0, t1)          -> ordered stream scan

The point of the worst-case guarantee here: even when a burst of events
is scheduled for (nearly) the same instant, no single schedule() stalls
the event loop — per-command work stays bounded.
"""

from fractions import Fraction
import random

from repro import DenseSequentialFile


class EventScheduler:
    """A tiny priority queue over a dense sequential file."""

    def __init__(self):
        self._file = DenseSequentialFile(num_pages=256, d=8, D=48)

    def schedule(self, when, payload) -> None:
        self._file.insert(when, payload)

    def cancel(self, when) -> None:
        self._file.delete(when)

    def pop_next(self):
        head = self._file.scan(float("-inf"), 1)
        if not head:
            return None
        record = head[0]
        self._file.delete(record.key)
        return record

    def due_between(self, t0, t1):
        return list(self._file.range(t0, t1))

    def __len__(self) -> int:
        return len(self._file)

    @property
    def stats(self):
        return self._file.stats

    def validate(self):
        self._file.validate()


def main() -> None:
    rng = random.Random(7)
    scheduler = EventScheduler()

    print("scheduling 1000 background events...")
    for _ in range(1000):
        when = Fraction(rng.randrange(1, 10**9), 1000)
        try:
            scheduler.schedule(when, "background")
        except Exception:
            continue

    print("now a burst: 400 retries all aimed at t ~ 500000 ...")
    scheduler._file.engine.enable_operation_log()
    base = Fraction(500_000)
    step = Fraction(1, 1)
    for index in range(400):
        step /= 2
        scheduler.schedule(base + step, f"retry-{index}")
    log = scheduler._file.engine.operation_log
    print(
        f"  burst served: worst single schedule() = "
        f"{log.worst_case_accesses} page accesses, "
        f"mean = {log.amortized_accesses:.1f}"
    )

    window = scheduler.due_between(base, base + 1)
    print(f"  events due in [t, t+1): {len(window)}")

    print("\ndraining the queue in order...")
    drained = []
    for _ in range(5):
        drained.append(scheduler.pop_next().key)
    print(f"  first five events fire at: {[str(k) for k in drained]}")
    assert drained == sorted(drained)

    scheduler.validate()
    print(f"\nqueue still holds {len(scheduler)} events; invariants hold")
    stats = scheduler.stats
    print(f"total cost: {stats.page_accesses} page accesses")


if __name__ == "__main__":
    main()
